//! A deterministic coverage-guided fuzzer over VISA binaries.
//!
//! AFL-lite: maintain a queue of interesting inputs; repeatedly pick
//! one, mutate it (bit flips, byte sets, arithmetic nudges, length
//! changes, splices), run it with edge coverage, and keep it when it
//! reaches a coverage point no earlier input reached. All randomness
//! flows from a caller-provided seed.

use dt_machine::Object;
use dt_vm::{CoverageMap, Vm, VmConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Fuzzing campaign configuration.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Number of executions to attempt.
    pub iterations: u32,
    /// Maximum input length.
    pub max_len: usize,
    /// RNG seed (campaigns are fully deterministic).
    pub seed: u64,
    /// Per-execution instruction budget.
    pub max_steps: u64,
    /// Arguments passed to the harness entry.
    pub entry_args: Vec<i64>,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            iterations: 2_000,
            max_len: 96,
            seed: 0x5eed,
            max_steps: 400_000,
            entry_args: Vec::new(),
        }
    }
}

/// Campaign outcome.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// The queue: every input that added coverage (or that the oracle
    /// flagged), in discovery order.
    pub queue: Vec<Vec<u8>>,
    /// Total coverage points reached.
    pub coverage_points: usize,
    /// Executions performed.
    pub executions: u32,
    /// Inputs the interestingness oracle flagged, in discovery order
    /// (deduplicated). Empty for plain coverage-only campaigns.
    pub oracle_hits: Vec<Vec<u8>>,
}

/// Runs one execution with coverage.
pub fn run_with_coverage(
    obj: &Object,
    entry: &str,
    input: &[u8],
    max_steps: u64,
    entry_args: &[i64],
) -> Option<CoverageMap> {
    let config = VmConfig {
        max_steps,
        collect_coverage: true,
        ..VmConfig::default()
    };
    let r = Vm::run_to_completion(obj, entry, entry_args, input, config).ok()?;
    r.coverage
}

/// Runs a fuzzing campaign against `entry` of `obj`.
pub fn fuzz(obj: &Object, entry: &str, seeds: &[Vec<u8>], config: &FuzzConfig) -> FuzzReport {
    fuzz_with_oracle(obj, entry, seeds, config, |_| false)
}

/// Runs a fuzzing campaign with an extra interestingness `oracle`:
/// every executed input that completes is offered to the oracle, and
/// flagged inputs join the queue as mutation parents even when they
/// add no coverage (they are "interesting" for a reason coverage
/// cannot see — e.g. they expose a debug-info defect). With a
/// constant-`false` oracle this is exactly [`fuzz`].
pub fn fuzz_with_oracle<F: FnMut(&[u8]) -> bool>(
    obj: &Object,
    entry: &str,
    seeds: &[Vec<u8>],
    config: &FuzzConfig,
    mut oracle: F,
) -> FuzzReport {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut global = CoverageMap::new(obj.code.len() * 2 + obj.funcs.len());
    // Discovery-order vectors plus set mirrors: membership tests run
    // once per execution, so `Vec::contains` would make the campaign
    // quadratic in queue length.
    let mut queue: Vec<Vec<u8>> = Vec::new();
    let mut queue_set: HashSet<Vec<u8>> = HashSet::new();
    let mut oracle_hits: Vec<Vec<u8>> = Vec::new();
    let mut hit_set: HashSet<Vec<u8>> = HashSet::new();

    let mut try_input = |input: Vec<u8>,
                         queue: &mut Vec<Vec<u8>>,
                         queue_set: &mut HashSet<Vec<u8>>,
                         oracle_hits: &mut Vec<Vec<u8>>,
                         hit_set: &mut HashSet<Vec<u8>>,
                         global: &mut CoverageMap|
     -> bool {
        let Some(cov) = run_with_coverage(obj, entry, &input, config.max_steps, &config.entry_args)
        else {
            return false;
        };
        let flagged = oracle(&input) && !hit_set.contains(&input);
        if flagged {
            oracle_hits.push(input.clone());
            hit_set.insert(input.clone());
        }
        if cov.adds_to(global) {
            global.merge(&cov);
            queue_set.insert(input.clone());
            queue.push(input);
            true
        } else if flagged && !queue_set.contains(&input) {
            queue_set.insert(input.clone());
            queue.push(input);
            true
        } else {
            false
        }
    };

    // Seeds first (always tried, kept only if they add coverage —
    // except the first, which anchors the queue).
    let mut executions = 0u32;
    for (i, s) in seeds.iter().enumerate() {
        executions += 1;
        let added = try_input(
            s.clone(),
            &mut queue,
            &mut queue_set,
            &mut oracle_hits,
            &mut hit_set,
            &mut global,
        );
        if i == 0 && !added && queue.is_empty() {
            queue_set.insert(s.clone());
            queue.push(s.clone());
        }
    }
    if queue.is_empty() {
        executions += 1;
        try_input(
            vec![0u8; 4],
            &mut queue,
            &mut queue_set,
            &mut oracle_hits,
            &mut hit_set,
            &mut global,
        );
        if queue.is_empty() {
            queue_set.insert(vec![0u8; 4]);
            queue.push(vec![0u8; 4]);
        }
    }

    while executions < config.iterations {
        executions += 1;
        let parent = &queue[rng.gen_range(0..queue.len())];
        let child = mutate(parent, &queue, config.max_len, &mut rng);
        try_input(
            child,
            &mut queue,
            &mut queue_set,
            &mut oracle_hits,
            &mut hit_set,
            &mut global,
        );
    }

    FuzzReport {
        coverage_points: global.count(),
        executions,
        queue,
        oracle_hits,
    }
}

/// One mutation of `parent`.
fn mutate(parent: &[u8], queue: &[Vec<u8>], max_len: usize, rng: &mut SmallRng) -> Vec<u8> {
    let mut out = parent.to_vec();
    // Stack 1..4 mutations, AFL havoc style.
    let count = 1 + rng.gen_range(0..4);
    for _ in 0..count {
        match rng.gen_range(0..7) {
            0 if !out.is_empty() => {
                // Bit flip.
                let i = rng.gen_range(0..out.len());
                out[i] ^= 1 << rng.gen_range(0..8);
            }
            1 if !out.is_empty() => {
                // Random byte.
                let i = rng.gen_range(0..out.len());
                out[i] = rng.gen();
            }
            2 if !out.is_empty() => {
                // Arithmetic nudge.
                let i = rng.gen_range(0..out.len());
                out[i] = out[i].wrapping_add(rng.gen_range(0..16)).wrapping_sub(8);
            }
            3 if out.len() < max_len => {
                // Insert a byte.
                let i = rng.gen_range(0..=out.len());
                out.insert(i, rng.gen());
            }
            4 if out.len() > 1 => {
                // Delete a byte.
                let i = rng.gen_range(0..out.len());
                out.remove(i);
            }
            5 => {
                // Splice with a random queue entry.
                let other = &queue[rng.gen_range(0..queue.len())];
                if !other.is_empty() && !out.is_empty() {
                    let cut_a = rng.gen_range(0..out.len());
                    let cut_b = rng.gen_range(0..other.len());
                    out.truncate(cut_a);
                    out.extend_from_slice(&other[cut_b..]);
                    out.truncate(max_len);
                }
            }
            _ => {
                // Interesting values.
                if !out.is_empty() {
                    let i = rng.gen_range(0..out.len());
                    const INTERESTING: [u8; 8] = [0, 1, 0x7f, 0x80, 0xff, 16, 32, 64];
                    out[i] = INTERESTING[rng.gen_range(0..INTERESTING.len())];
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A little parser with guarded branches: fuzzing must find the
    /// magic bytes to reach deeper code.
    const MAZE: &str = "\
int process() {
    if (in(0) != 16) { return 1; }
    if (in(1) != 32) { return 2; }
    if (in(2) < 10) { return 3; }
    out(in(2));
    if (in(3) == 127) { out(99); return 42; }
    return 4;
}";

    fn object() -> Object {
        let m = dt_frontend::lower_source(MAZE).unwrap();
        dt_machine::run_backend(&m, &dt_machine::BackendConfig::default())
    }

    #[test]
    fn campaign_is_deterministic() {
        let obj = object();
        let cfg = FuzzConfig {
            iterations: 800,
            ..Default::default()
        };
        let a = fuzz(&obj, "process", &[vec![0, 0, 0, 0]], &cfg);
        let b = fuzz(&obj, "process", &[vec![0, 0, 0, 0]], &cfg);
        assert_eq!(a.queue, b.queue);
        assert_eq!(a.coverage_points, b.coverage_points);
    }

    #[test]
    fn coverage_grows_past_guards() {
        let obj = object();
        let cfg = FuzzConfig {
            iterations: 4_000,
            ..Default::default()
        };
        let report = fuzz(&obj, "process", &[vec![0, 0, 0, 0]], &cfg);
        assert!(
            report.queue.len() >= 3,
            "the fuzzer must break through several guards: {} inputs",
            report.queue.len()
        );
        // The first guard (77) must have been passed.
        assert!(report.queue.iter().any(|i| i.first() == Some(&16)));
    }

    #[test]
    fn queue_inputs_each_added_coverage() {
        let obj = object();
        let cfg = FuzzConfig {
            iterations: 2_000,
            ..Default::default()
        };
        let report = fuzz(&obj, "process", &[vec![0, 0, 0, 0]], &cfg);
        // Replaying the queue in order: every element adds coverage.
        let mut global = CoverageMap::new(obj.code.len() * 2 + obj.funcs.len());
        let mut adds = 0;
        for input in &report.queue {
            let cov = run_with_coverage(&obj, "process", input, 100_000, &[]).unwrap();
            if cov.adds_to(&global) {
                adds += 1;
                global.merge(&cov);
            }
        }
        assert_eq!(adds, report.queue.len());
    }

    #[test]
    fn oracle_hits_join_the_queue() {
        let obj = object();
        let cfg = FuzzConfig {
            iterations: 1_500,
            ..Default::default()
        };
        // Flag any input whose first byte is odd — coverage-blind.
        let report = fuzz_with_oracle(&obj, "process", &[vec![0, 0, 0, 0]], &cfg, |i| {
            i.first().is_some_and(|b| b % 2 == 1)
        });
        assert!(!report.oracle_hits.is_empty(), "oracle never fired");
        for hit in &report.oracle_hits {
            assert_eq!(hit[0] % 2, 1);
            assert!(report.queue.contains(hit), "hits become mutation parents");
        }
        // Dedup: no input flagged twice.
        let mut sorted = report.oracle_hits.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), report.oracle_hits.len());
    }

    #[test]
    fn noop_oracle_matches_plain_fuzz() {
        let obj = object();
        let cfg = FuzzConfig {
            iterations: 1_000,
            ..Default::default()
        };
        let plain = fuzz(&obj, "process", &[vec![0, 0, 0, 0]], &cfg);
        let orc = fuzz_with_oracle(&obj, "process", &[vec![0, 0, 0, 0]], &cfg, |_| false);
        assert_eq!(plain.queue, orc.queue);
        assert_eq!(plain.coverage_points, orc.coverage_points);
        assert!(orc.oracle_hits.is_empty());
    }

    #[test]
    fn hangs_are_survived() {
        let src = "int process() { if (in(0) == 1) { while (1) { } } return 0; }";
        let m = dt_frontend::lower_source(src).unwrap();
        let obj = dt_machine::run_backend(&m, &dt_machine::BackendConfig::default());
        let cfg = FuzzConfig {
            iterations: 300,
            max_steps: 5_000,
            ..Default::default()
        };
        let report = fuzz(&obj, "process", &[vec![0]], &cfg);
        assert_eq!(report.executions, 300);
    }
}
