//! IR instructions, values, terminators, and effect queries.

use crate::module::{FuncId, GlobalId, SlotId, VReg, VarId};

/// The IR reuses MiniC's operator enums so constant folding anywhere in
/// the pipeline agrees exactly with source/VM semantics.
pub use dt_minic::ast::{BinOp, UnOp};

/// An operand: a virtual register or an immediate constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Value {
    Reg(VReg),
    Const(i64),
}

impl Value {
    /// The register, if this is a register operand.
    pub fn as_reg(self) -> Option<VReg> {
        match self {
            Value::Reg(r) => Some(r),
            Value::Const(_) => None,
        }
    }

    /// The constant, if this is an immediate operand.
    pub fn as_const(self) -> Option<i64> {
        match self {
            Value::Const(c) => Some(c),
            Value::Reg(_) => None,
        }
    }
}

impl From<VReg> for Value {
    fn from(r: VReg) -> Self {
        Value::Reg(r)
    }
}

impl From<i64> for Value {
    fn from(c: i64) -> Self {
        Value::Const(c)
    }
}

/// Where a debug intrinsic says a variable's value lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DbgLoc {
    /// The variable currently equals this IR value.
    Value(Value),
    /// The variable lives in this stack slot (the O0 model, and arrays).
    Slot(SlotId),
    /// The variable's value is unrecoverable from this point until the
    /// next debug intrinsic for the same variable.
    Undef,
}

/// An IR operation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Op {
    /// `dst = src`
    Copy { dst: VReg, src: Value },
    /// `dst = op src`
    Un { dst: VReg, op: UnOp, src: Value },
    /// `dst = lhs op rhs`
    Bin {
        dst: VReg,
        op: BinOp,
        lhs: Value,
        rhs: Value,
    },
    /// `dst = cond != 0 ? on_true : on_false`
    Select {
        dst: VReg,
        cond: Value,
        on_true: Value,
        on_false: Value,
    },
    /// `dst = slot`
    LoadSlot { dst: VReg, slot: SlotId },
    /// `slot = src`
    StoreSlot { slot: SlotId, src: Value },
    /// `dst = slot[index]` (local array; index is wrapped to bounds)
    LoadIdx {
        dst: VReg,
        slot: SlotId,
        index: Value,
    },
    /// `slot[index] = src`
    StoreIdx {
        slot: SlotId,
        index: Value,
        src: Value,
    },
    /// `dst = global`
    LoadGlobal { dst: VReg, global: GlobalId },
    /// `global = src`
    StoreGlobal { global: GlobalId, src: Value },
    /// `dst = global[index]`
    LoadGIdx {
        dst: VReg,
        global: GlobalId,
        index: Value,
    },
    /// `global[index] = src`
    StoreGIdx {
        global: GlobalId,
        index: Value,
        src: Value,
    },
    /// `dst = callee(args...)`
    Call {
        dst: VReg,
        callee: FuncId,
        args: Vec<Value>,
    },
    /// `dst = in(index)`: input byte, or -1 past the end.
    In { dst: VReg, index: Value },
    /// `dst = in_len()`
    InLen { dst: VReg },
    /// `out(src)`
    Out { src: Value },
    /// Debug intrinsic: from this point, variable `var` is described by
    /// `loc`. Generates no code.
    DbgValue { var: VarId, loc: DbgLoc },
}

/// What part of memory an operation touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemEffect {
    None,
    ReadSlot(SlotId),
    WriteSlot(SlotId),
    ReadGlobal(GlobalId),
    WriteGlobal(GlobalId),
    /// Calls may read and write any global memory and perform I/O
    /// (unless the callee is known pure-const).
    Call(FuncId),
    /// Input/output side effect.
    Io,
}

impl Op {
    /// The register defined by this operation, if any.
    pub fn def(&self) -> Option<VReg> {
        match self {
            Op::Copy { dst, .. }
            | Op::Un { dst, .. }
            | Op::Bin { dst, .. }
            | Op::Select { dst, .. }
            | Op::LoadSlot { dst, .. }
            | Op::LoadIdx { dst, .. }
            | Op::LoadGlobal { dst, .. }
            | Op::LoadGIdx { dst, .. }
            | Op::Call { dst, .. }
            | Op::In { dst, .. }
            | Op::InLen { dst } => Some(*dst),
            Op::StoreSlot { .. }
            | Op::StoreIdx { .. }
            | Op::StoreGlobal { .. }
            | Op::StoreGIdx { .. }
            | Op::Out { .. }
            | Op::DbgValue { .. } => None,
        }
    }

    /// Rewrites the defined register through `f`.
    pub fn set_def(&mut self, new: VReg) {
        match self {
            Op::Copy { dst, .. }
            | Op::Un { dst, .. }
            | Op::Bin { dst, .. }
            | Op::Select { dst, .. }
            | Op::LoadSlot { dst, .. }
            | Op::LoadIdx { dst, .. }
            | Op::LoadGlobal { dst, .. }
            | Op::LoadGIdx { dst, .. }
            | Op::Call { dst, .. }
            | Op::In { dst, .. }
            | Op::InLen { dst } => *dst = new,
            _ => panic!("set_def on an operation without a destination"),
        }
    }

    /// Invokes `f` on every operand (use) of the operation, including
    /// the value described by a debug intrinsic.
    pub fn for_each_use(&self, mut f: impl FnMut(Value)) {
        self.visit_uses(&mut |v| f(*v));
    }

    /// Invokes `f` with mutable access to every operand.
    pub fn for_each_use_mut(&mut self, mut f: impl FnMut(&mut Value)) {
        self.visit_uses_mut(&mut |v| f(v));
    }

    fn visit_uses(&self, f: &mut dyn FnMut(&Value)) {
        // SAFETY-free trick: route through the mutable visitor on a clone
        // would cost; instead duplicate the match.
        match self {
            Op::Copy { src, .. } | Op::Un { src, .. } => f(src),
            Op::Bin { lhs, rhs, .. } => {
                f(lhs);
                f(rhs);
            }
            Op::Select {
                cond,
                on_true,
                on_false,
                ..
            } => {
                f(cond);
                f(on_true);
                f(on_false);
            }
            Op::LoadSlot { .. } | Op::LoadGlobal { .. } | Op::InLen { .. } => {}
            Op::StoreSlot { src, .. } | Op::StoreGlobal { src, .. } | Op::Out { src } => f(src),
            Op::LoadIdx { index, .. } | Op::LoadGIdx { index, .. } => f(index),
            Op::StoreIdx { index, src, .. } | Op::StoreGIdx { index, src, .. } => {
                f(index);
                f(src);
            }
            Op::Call { args, .. } => args.iter().for_each(f),
            Op::In { index, .. } => f(index),
            Op::DbgValue { loc, .. } => {
                if let DbgLoc::Value(v) = loc {
                    f(v);
                }
            }
        }
    }

    fn visit_uses_mut(&mut self, f: &mut dyn FnMut(&mut Value)) {
        match self {
            Op::Copy { src, .. } | Op::Un { src, .. } => f(src),
            Op::Bin { lhs, rhs, .. } => {
                f(lhs);
                f(rhs);
            }
            Op::Select {
                cond,
                on_true,
                on_false,
                ..
            } => {
                f(cond);
                f(on_true);
                f(on_false);
            }
            Op::LoadSlot { .. } | Op::LoadGlobal { .. } | Op::InLen { .. } => {}
            Op::StoreSlot { src, .. } | Op::StoreGlobal { src, .. } | Op::Out { src } => f(src),
            Op::LoadIdx { index, .. } | Op::LoadGIdx { index, .. } => f(index),
            Op::StoreIdx { index, src, .. } | Op::StoreGIdx { index, src, .. } => {
                f(index);
                f(src);
            }
            Op::Call { args, .. } => args.iter_mut().for_each(f),
            Op::In { index, .. } => f(index),
            Op::DbgValue { loc, .. } => {
                if let DbgLoc::Value(v) = loc {
                    f(v);
                }
            }
        }
    }

    /// Whether this is a debug intrinsic.
    pub fn is_dbg(&self) -> bool {
        matches!(self, Op::DbgValue { .. })
    }

    /// The operation's memory/I/O effect.
    pub fn mem_effect(&self) -> MemEffect {
        match self {
            Op::LoadSlot { slot, .. } | Op::LoadIdx { slot, .. } => MemEffect::ReadSlot(*slot),
            Op::StoreSlot { slot, .. } | Op::StoreIdx { slot, .. } => MemEffect::WriteSlot(*slot),
            Op::LoadGlobal { global, .. } | Op::LoadGIdx { global, .. } => {
                MemEffect::ReadGlobal(*global)
            }
            Op::StoreGlobal { global, .. } | Op::StoreGIdx { global, .. } => {
                MemEffect::WriteGlobal(*global)
            }
            Op::Call { callee, .. } => MemEffect::Call(*callee),
            Op::In { .. } | Op::InLen { .. } | Op::Out { .. } => MemEffect::Io,
            _ => MemEffect::None,
        }
    }

    /// Whether the operation has an effect beyond defining its register
    /// (so DCE must keep it even if the register is dead). Calls are
    /// conservatively side-effecting; passes refine this with
    /// `pure_const` attributes.
    pub fn has_side_effect(&self) -> bool {
        matches!(
            self,
            Op::StoreSlot { .. }
                | Op::StoreIdx { .. }
                | Op::StoreGlobal { .. }
                | Op::StoreGIdx { .. }
                | Op::Call { .. }
                | Op::In { .. }
                | Op::InLen { .. }
                | Op::Out { .. }
        )
    }

    /// Whether the operation is a pure computation (no memory, no I/O),
    /// i.e. eligible for CSE/GVN/LICM.
    pub fn is_pure(&self) -> bool {
        matches!(
            self,
            Op::Copy { .. } | Op::Un { .. } | Op::Bin { .. } | Op::Select { .. }
        )
    }

    /// If the operation computes a constant, folds it.
    pub fn fold_constant(&self) -> Option<i64> {
        match self {
            Op::Copy {
                src: Value::Const(c),
                ..
            } => Some(*c),
            Op::Un {
                op,
                src: Value::Const(c),
                ..
            } => Some(op.eval(*c)),
            Op::Bin {
                op,
                lhs: Value::Const(a),
                rhs: Value::Const(b),
                ..
            } => Some(op.eval(*a, *b)),
            Op::Select {
                cond: Value::Const(c),
                on_true,
                on_false,
                ..
            } => {
                let v = if *c != 0 { on_true } else { on_false };
                v.as_const()
            }
            _ => None,
        }
    }
}

/// An instruction: an operation plus debug metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Inst {
    pub op: Op,
    /// Source line (0 = no line, DWARF's "line 0" convention).
    pub line: u32,
    /// Set by the SLP vectorizer: this instruction executes fused with
    /// the next one (the VM charges the pair a single issue slot).
    pub fused: bool,
}

impl Inst {
    /// A new instruction at `line`.
    pub fn new(op: Op, line: u32) -> Self {
        Inst {
            op,
            line,
            fused: false,
        }
    }

    /// A new artificial instruction with no source line.
    pub fn synth(op: Op) -> Self {
        Inst::new(op, 0)
    }
}

/// Block terminators.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(crate::module::BlockId),
    /// Conditional branch on `cond != 0`.
    Branch {
        cond: Value,
        then_bb: crate::module::BlockId,
        else_bb: crate::module::BlockId,
        /// Estimated probability (per mille) that the branch is taken,
        /// set by `guess-branch-probability` or by AutoFDO profiles.
        prob_then: Option<u16>,
    },
    /// Return, optionally with a value.
    Ret(Option<Value>),
}

impl Terminator {
    /// Successor block ids.
    pub fn successors(&self) -> Vec<crate::module::BlockId> {
        match self {
            Terminator::Jump(b) => vec![*b],
            Terminator::Branch {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            Terminator::Ret(_) => vec![],
        }
    }

    /// Invokes `f` with mutable access to each successor id.
    pub fn for_each_successor_mut(&mut self, mut f: impl FnMut(&mut crate::module::BlockId)) {
        match self {
            Terminator::Jump(b) => f(b),
            Terminator::Branch {
                then_bb, else_bb, ..
            } => {
                f(then_bb);
                f(else_bb);
            }
            Terminator::Ret(_) => {}
        }
    }

    /// The condition operand of a branch, if any.
    pub fn cond(&self) -> Option<Value> {
        match self {
            Terminator::Branch { cond, .. } => Some(*cond),
            _ => None,
        }
    }

    /// Invokes `f` on the values used by the terminator.
    pub fn for_each_use(&self, mut f: impl FnMut(Value)) {
        match self {
            Terminator::Branch { cond, .. } => f(*cond),
            Terminator::Ret(Some(v)) => f(*v),
            _ => {}
        }
    }

    /// Invokes `f` with mutable access to the values used.
    pub fn for_each_use_mut(&mut self, mut f: impl FnMut(&mut Value)) {
        match self {
            Terminator::Branch { cond, .. } => f(cond),
            Terminator::Ret(Some(v)) => f(v),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::BlockId;

    #[test]
    fn def_and_uses() {
        let op = Op::Bin {
            dst: VReg(2),
            op: BinOp::Add,
            lhs: Value::Reg(VReg(0)),
            rhs: Value::Const(1),
        };
        assert_eq!(op.def(), Some(VReg(2)));
        let mut uses = Vec::new();
        op.for_each_use(|v| uses.push(v));
        assert_eq!(uses, vec![Value::Reg(VReg(0)), Value::Const(1)]);
    }

    #[test]
    fn stores_have_no_def_but_side_effects() {
        let op = Op::StoreGlobal {
            global: GlobalId(0),
            src: Value::Const(3),
        };
        assert_eq!(op.def(), None);
        assert!(op.has_side_effect());
        assert!(!op.is_pure());
    }

    #[test]
    fn dbg_value_uses_its_value() {
        let op = Op::DbgValue {
            var: VarId(0),
            loc: DbgLoc::Value(Value::Reg(VReg(5))),
        };
        let mut uses = Vec::new();
        op.for_each_use(|v| uses.push(v));
        assert_eq!(uses, vec![Value::Reg(VReg(5))]);
        assert!(op.is_dbg());
        assert!(!op.has_side_effect());
    }

    #[test]
    fn rewrite_uses() {
        let mut op = Op::Bin {
            dst: VReg(2),
            op: BinOp::Mul,
            lhs: Value::Reg(VReg(0)),
            rhs: Value::Reg(VReg(0)),
        };
        op.for_each_use_mut(|v| {
            if *v == Value::Reg(VReg(0)) {
                *v = Value::Const(7);
            }
        });
        assert_eq!(op.fold_constant(), Some(49));
    }

    #[test]
    fn constant_folding() {
        let op = Op::Bin {
            dst: VReg(0),
            op: BinOp::Div,
            lhs: Value::Const(10),
            rhs: Value::Const(0),
        };
        assert_eq!(op.fold_constant(), Some(0), "division by zero is total");
        let op = Op::Select {
            dst: VReg(0),
            cond: Value::Const(1),
            on_true: Value::Const(4),
            on_false: Value::Const(9),
        };
        assert_eq!(op.fold_constant(), Some(4));
    }

    #[test]
    fn terminator_successors() {
        let t = Terminator::Branch {
            cond: Value::Reg(VReg(0)),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
            prob_then: None,
        };
        assert_eq!(t.successors(), vec![BlockId(1), BlockId(2)]);
        assert_eq!(Terminator::Ret(None).successors(), vec![]);
    }

    #[test]
    fn terminator_successor_rewrite() {
        let mut t = Terminator::Jump(BlockId(3));
        t.for_each_successor_mut(|b| *b = BlockId(7));
        assert_eq!(t.successors(), vec![BlockId(7)]);
    }

    #[test]
    fn mem_effects() {
        assert_eq!(
            Op::LoadSlot {
                dst: VReg(0),
                slot: SlotId(2)
            }
            .mem_effect(),
            MemEffect::ReadSlot(SlotId(2))
        );
        assert_eq!(
            Op::Out {
                src: Value::Const(0)
            }
            .mem_effect(),
            MemEffect::Io
        );
    }
}
