//! Backward liveness analysis for virtual registers.
//!
//! Debug intrinsic operands do **not** keep a register alive by
//! default; that is precisely how optimized code loses variable values
//! (the register dies, the `dbg.value` dangles, the location list gets
//! a hole). Passes that want debug-aware liveness can opt in.

use crate::cfg::{postorder, successors};
use crate::module::{BlockId, Function, VReg};

/// A dense bitset over virtual registers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegSet {
    words: Vec<u64>,
}

impl RegSet {
    /// An empty set sized for `n` registers.
    pub fn new(n: u32) -> Self {
        RegSet {
            words: vec![0; (n as usize).div_ceil(64)],
        }
    }

    pub fn insert(&mut self, r: VReg) -> bool {
        let (w, b) = (r.index() / 64, r.index() % 64);
        let old = self.words[w];
        self.words[w] |= 1 << b;
        old & (1 << b) == 0
    }

    pub fn remove(&mut self, r: VReg) {
        let (w, b) = (r.index() / 64, r.index() % 64);
        self.words[w] &= !(1 << b);
    }

    pub fn contains(&self, r: VReg) -> bool {
        let (w, b) = (r.index() / 64, r.index() % 64);
        self.words.get(w).is_some_and(|x| x & (1 << b) != 0)
    }

    /// Unions `other` into `self`, returning whether anything changed.
    pub fn union_with(&mut self, other: &RegSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a | *b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// Iterates over the registers in the set.
    pub fn iter(&self) -> impl Iterator<Item = VReg> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64)
                .filter(move |b| w & (1u64 << b) != 0)
                .map(move |b| VReg((wi * 64 + b) as u32))
        })
    }

    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }
}

/// Per-block live-in/live-out register sets.
#[derive(Debug, Clone)]
pub struct Liveness {
    pub live_in: Vec<RegSet>,
    pub live_out: Vec<RegSet>,
    /// Whether debug intrinsic operands were treated as uses.
    pub debug_aware: bool,
}

impl Liveness {
    /// Computes liveness ignoring debug intrinsic uses (codegen view).
    pub fn compute(f: &Function) -> Self {
        Self::compute_inner(f, false)
    }

    /// Computes liveness counting debug intrinsic operands as uses
    /// (the view a debug-info-preserving allocator would take).
    pub fn compute_debug_aware(f: &Function) -> Self {
        Self::compute_inner(f, true)
    }

    fn compute_inner(f: &Function, debug_aware: bool) -> Self {
        let n = f.blocks.len();
        let succs = successors(f);
        // use[b]: used before any def in b; def[b]: defined in b.
        let mut use_sets = vec![RegSet::new(f.vreg_count); n];
        let mut def_sets = vec![RegSet::new(f.vreg_count); n];
        for b in f.block_ids() {
            let blk = f.block(b);
            let (use_b, def_b) = (&mut use_sets[b.index()], &mut def_sets[b.index()]);
            for inst in &blk.insts {
                if inst.op.is_dbg() && !debug_aware {
                    continue;
                }
                inst.op.for_each_use(|v| {
                    if let Some(r) = v.as_reg() {
                        if !def_b.contains(r) {
                            use_b.insert(r);
                        }
                    }
                });
                if let Some(d) = inst.op.def() {
                    def_b.insert(d);
                }
            }
            blk.term.for_each_use(|v| {
                if let Some(r) = v.as_reg() {
                    if !def_b.contains(r) {
                        use_b.insert(r);
                    }
                }
            });
        }

        let mut live_in = vec![RegSet::new(f.vreg_count); n];
        let mut live_out = vec![RegSet::new(f.vreg_count); n];
        // Iterate to fixpoint in postorder (backward problem).
        let order = postorder(f);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &order {
                let mut out = RegSet::new(f.vreg_count);
                for &s in &succs[b.index()] {
                    out.union_with(&live_in[s.index()]);
                }
                // in = use ∪ (out \ def)
                let mut inp = use_sets[b.index()].clone();
                for r in out.iter() {
                    if !def_sets[b.index()].contains(r) {
                        inp.insert(r);
                    }
                }
                if inp != live_in[b.index()] {
                    live_in[b.index()] = inp;
                    changed = true;
                }
                live_out[b.index()] = out;
            }
        }

        Liveness {
            live_in,
            live_out,
            debug_aware,
        }
    }

    /// Live-out set of block `b`.
    pub fn out(&self, b: BlockId) -> &RegSet {
        &self.live_out[b.index()]
    }

    /// Live-in set of block `b`.
    pub fn r#in(&self, b: BlockId) -> &RegSet {
        &self.live_in[b.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{BinOp, DbgLoc, Inst, Op, Terminator, Value};
    use crate::module::{Block, FuncAttrs, FuncId, Function, VarId};

    fn simple_loop() -> Function {
        // bb0: %0 = 0; jmp bb1
        // bb1: %1 = %0 + 1; br %1 ? bb1 : bb2
        // bb2: ret %1
        let mut b0 = Block::new(Terminator::Jump(BlockId(1)));
        b0.insts.push(Inst::synth(Op::Copy {
            dst: VReg(0),
            src: Value::Const(0),
        }));
        let mut b1 = Block::new(Terminator::Branch {
            cond: Value::Reg(VReg(1)),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
            prob_then: None,
        });
        b1.insts.push(Inst::synth(Op::Bin {
            dst: VReg(1),
            op: BinOp::Add,
            lhs: Value::Reg(VReg(0)),
            rhs: Value::Const(1),
        }));
        let b2 = Block::new(Terminator::Ret(Some(Value::Reg(VReg(1)))));
        Function {
            name: "l".into(),
            id: FuncId(0),
            params: vec![],
            blocks: vec![b0, b1, b2],
            entry: BlockId(0),
            vreg_count: 2,
            vars: vec![],
            slots: vec![],
            line: 1,
            end_line: 1,
            attrs: FuncAttrs::default(),
        }
    }

    #[test]
    fn loop_carried_value_is_live_around_backedge() {
        let f = simple_loop();
        let lv = Liveness::compute(&f);
        assert!(lv.r#in(BlockId(1)).contains(VReg(0)));
        assert!(
            lv.out(BlockId(1)).contains(VReg(0)),
            "backedge keeps %0 live"
        );
        assert!(lv.out(BlockId(1)).contains(VReg(1)));
        assert!(!lv.r#in(BlockId(0)).contains(VReg(0)));
    }

    #[test]
    fn dbg_uses_ignored_by_default() {
        let mut f = simple_loop();
        // Add a dbg.value of %0 in bb2 (after its last real use).
        f.blocks[2].insts.push(Inst::synth(Op::DbgValue {
            var: VarId(0),
            loc: DbgLoc::Value(Value::Reg(VReg(0))),
        }));
        let lv = Liveness::compute(&f);
        assert!(
            !lv.r#in(BlockId(2)).contains(VReg(0)),
            "plain liveness must not count debug uses"
        );
        let lv_dbg = Liveness::compute_debug_aware(&f);
        assert!(
            lv_dbg.r#in(BlockId(2)).contains(VReg(0)),
            "debug-aware liveness counts them"
        );
    }

    #[test]
    fn regset_operations() {
        let mut s = RegSet::new(130);
        assert!(s.insert(VReg(0)));
        assert!(s.insert(VReg(129)));
        assert!(!s.insert(VReg(0)), "double insert reports no change");
        assert!(s.contains(VReg(129)));
        assert_eq!(s.len(), 2);
        s.remove(VReg(0));
        assert!(!s.contains(VReg(0)));
        let collected: Vec<_> = s.iter().collect();
        assert_eq!(collected, vec![VReg(129)]);
    }

    #[test]
    fn regset_union() {
        let mut a = RegSet::new(10);
        let mut b = RegSet::new(10);
        a.insert(VReg(1));
        b.insert(VReg(2));
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b), "second union is a no-op");
        assert!(a.contains(VReg(1)) && a.contains(VReg(2)));
    }
}
