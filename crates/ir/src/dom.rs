//! Dominator tree via the Cooper–Harvey–Kennedy iterative algorithm.

use crate::cfg::{predecessors, reverse_postorder};
use crate::module::{BlockId, Function};

/// The dominator tree of a function's reachable CFG.
#[derive(Debug, Clone)]
pub struct DomTree {
    /// Immediate dominator of each block (`idom[entry] == entry`);
    /// `None` for unreachable or dead blocks.
    idom: Vec<Option<BlockId>>,
    /// Reverse-postorder position of each reachable block (kept for
    /// ordering queries by passes).
    pub rpo_pos: Vec<usize>,
    rpo: Vec<BlockId>,
    entry: BlockId,
}

impl DomTree {
    /// Computes the dominator tree of `f`.
    pub fn compute(f: &Function) -> Self {
        let rpo = reverse_postorder(f);
        let preds = predecessors(f);
        let mut rpo_pos = vec![usize::MAX; f.blocks.len()];
        for (i, b) in rpo.iter().enumerate() {
            rpo_pos[b.index()] = i;
        }
        let mut idom: Vec<Option<BlockId>> = vec![None; f.blocks.len()];
        idom[f.entry.index()] = Some(f.entry);

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[b.index()] {
                    if idom[p.index()].is_none() {
                        continue; // not yet processed / unreachable
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_pos, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }

        DomTree {
            idom,
            rpo_pos,
            rpo,
            entry: f.entry,
        }
    }

    /// The immediate dominator of `b` (`None` for the entry and for
    /// unreachable blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        if b == self.entry {
            return None;
        }
        self.idom[b.index()]
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.idom[b.index()].is_none() || self.idom[a.index()].is_none() {
            return false; // unreachable blocks dominate nothing
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur == self.entry {
                return false;
            }
            cur = self.idom[cur.index()].expect("reachable chain");
        }
    }

    /// Whether `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.idom[b.index()].is_some()
    }

    /// Reverse postorder used by the computation.
    pub fn rpo(&self) -> &[BlockId] {
        &self.rpo
    }
}

fn intersect(
    idom: &[Option<BlockId>],
    rpo_pos: &[usize],
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_pos[a.index()] > rpo_pos[b.index()] {
            a = idom[a.index()].expect("processed");
        }
        while rpo_pos[b.index()] > rpo_pos[a.index()] {
            b = idom[b.index()].expect("processed");
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Terminator, Value};
    use crate::module::{Block, FuncAttrs, FuncId, Function, VReg};

    fn function_with(blocks: Vec<Block>) -> Function {
        Function {
            name: "t".into(),
            id: FuncId(0),
            params: vec![],
            blocks,
            entry: BlockId(0),
            vreg_count: 1,
            vars: vec![],
            slots: vec![],
            line: 1,
            end_line: 1,
            attrs: FuncAttrs::default(),
        }
    }

    fn branch(t: u32, e: u32) -> Terminator {
        Terminator::Branch {
            cond: Value::Reg(VReg(0)),
            then_bb: BlockId(t),
            else_bb: BlockId(e),
            prob_then: None,
        }
    }

    #[test]
    fn diamond_dominators() {
        // bb0 -> {bb1, bb2} -> bb3
        let f = function_with(vec![
            Block::new(branch(1, 2)),
            Block::new(Terminator::Jump(BlockId(3))),
            Block::new(Terminator::Jump(BlockId(3))),
            Block::new(Terminator::Ret(None)),
        ]);
        let dt = DomTree::compute(&f);
        assert_eq!(dt.idom(BlockId(1)), Some(BlockId(0)));
        assert_eq!(dt.idom(BlockId(2)), Some(BlockId(0)));
        assert_eq!(dt.idom(BlockId(3)), Some(BlockId(0)));
        assert!(dt.dominates(BlockId(0), BlockId(3)));
        assert!(!dt.dominates(BlockId(1), BlockId(3)));
        assert!(dt.dominates(BlockId(3), BlockId(3)));
    }

    #[test]
    fn loop_dominators() {
        // bb0 -> bb1 (header) -> {bb2 (body), bb3 (exit)}, bb2 -> bb1
        let f = function_with(vec![
            Block::new(Terminator::Jump(BlockId(1))),
            Block::new(branch(2, 3)),
            Block::new(Terminator::Jump(BlockId(1))),
            Block::new(Terminator::Ret(None)),
        ]);
        let dt = DomTree::compute(&f);
        assert_eq!(dt.idom(BlockId(2)), Some(BlockId(1)));
        assert_eq!(dt.idom(BlockId(3)), Some(BlockId(1)));
        assert!(dt.dominates(BlockId(1), BlockId(2)));
        assert!(!dt.dominates(BlockId(2), BlockId(3)));
    }

    #[test]
    fn unreachable_blocks_have_no_idom() {
        let f = function_with(vec![
            Block::new(Terminator::Ret(None)),
            Block::new(Terminator::Ret(None)), // orphan
        ]);
        let dt = DomTree::compute(&f);
        assert!(!dt.is_reachable(BlockId(1)));
        assert_eq!(dt.idom(BlockId(1)), None);
        assert!(!dt.dominates(BlockId(1), BlockId(0)));
    }

    #[test]
    fn entry_dominates_everything_reachable() {
        let f = function_with(vec![
            Block::new(branch(1, 2)),
            Block::new(branch(2, 3)),
            Block::new(Terminator::Jump(BlockId(3))),
            Block::new(Terminator::Ret(None)),
        ]);
        let dt = DomTree::compute(&f);
        for b in 0..4 {
            assert!(dt.dominates(BlockId(0), BlockId(b)));
        }
    }
}
