//! Source-level execution profiles (the AutoFDO exchange format).
//!
//! A profile maps source lines to sample counts. It is produced by the
//! `dt-autofdo` crate from PC samples resolved through a binary's
//! line-number table — so its fidelity depends directly on the debug
//! information quality of the profiled binary, which is the paper's
//! AutoFDO case study in a nutshell. Optimization passes consume the
//! profile through the query methods here.

use std::collections::HashMap;

/// A line-keyed sample profile.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Profile {
    /// Samples attributed to each source line.
    pub line_samples: HashMap<u32, u64>,
    /// Total samples taken (including ones that could not be mapped to
    /// any line — the "lost" samples caused by missing debug info).
    pub total_samples: u64,
}

impl Profile {
    /// An empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` samples at `line`.
    pub fn add(&mut self, line: u32, n: u64) {
        *self.line_samples.entry(line).or_insert(0) += n;
        self.total_samples += n;
    }

    /// Records samples that could not be mapped to a line.
    pub fn add_unmapped(&mut self, n: u64) {
        self.total_samples += n;
    }

    /// Samples at `line`.
    pub fn at(&self, line: u32) -> u64 {
        self.line_samples.get(&line).copied().unwrap_or(0)
    }

    /// Total samples over an inclusive line range (a function body).
    pub fn range(&self, lo: u32, hi: u32) -> u64 {
        self.line_samples
            .iter()
            .filter(|(&l, _)| l >= lo && l <= hi)
            .map(|(_, &n)| n)
            .sum()
    }

    /// Fraction of all samples mapped to lines (the profile's quality;
    /// 1.0 means every sample had usable debug info).
    pub fn mapped_fraction(&self) -> f64 {
        if self.total_samples == 0 {
            return 0.0;
        }
        let mapped: u64 = self.line_samples.values().sum();
        mapped as f64 / self.total_samples as f64
    }

    /// Whether `line` is hot: it holds at least `pct`% of all samples
    /// or exceeds the mean line weight by 4x.
    pub fn is_hot(&self, line: u32, pct: f64) -> bool {
        if self.total_samples == 0 || self.line_samples.is_empty() {
            return false;
        }
        let s = self.at(line);
        if s == 0 {
            return false;
        }
        let share = s as f64 / self.total_samples as f64;
        let mean = self.total_samples as f64 / self.line_samples.len() as f64;
        share >= pct / 100.0 || s as f64 >= 4.0 * mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_samples() {
        let mut p = Profile::new();
        p.add(10, 5);
        p.add(10, 3);
        p.add(11, 2);
        p.add_unmapped(10);
        assert_eq!(p.at(10), 8);
        assert_eq!(p.at(99), 0);
        assert_eq!(p.total_samples, 20);
        assert!((p.mapped_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn range_sums_lines() {
        let mut p = Profile::new();
        p.add(5, 1);
        p.add(7, 2);
        p.add(9, 4);
        assert_eq!(p.range(5, 7), 3);
        assert_eq!(p.range(6, 9), 6);
        assert_eq!(p.range(10, 20), 0);
    }

    #[test]
    fn hotness_detection() {
        let mut p = Profile::new();
        p.add(1, 96);
        p.add(2, 1);
        p.add(3, 1);
        p.add(4, 1);
        p.add(5, 1);
        assert!(p.is_hot(1, 50.0));
        assert!(!p.is_hot(2, 50.0));
        assert!(!p.is_hot(99, 1.0));
        assert!(!Profile::new().is_hot(1, 1.0));
    }
}
