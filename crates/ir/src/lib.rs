//! Three-address intermediate representation for the DebugTuner compiler.
//!
//! The IR is a conventional CFG-of-basic-blocks representation over
//! unlimited virtual registers (non-SSA: a register may be redefined,
//! which keeps the pass implementations honest about dataflow). Two
//! features make it suitable for studying debug-information loss:
//!
//! * every instruction carries the source line it derives from
//!   (`0` = "no line", the IR analogue of DWARF's line-0 convention);
//! * **debug value intrinsics** ([`Op::DbgValue`]) bind a source
//!   variable to a machine value at a program point, exactly like
//!   `llvm.dbg.value`. Optimization passes must maintain them; the
//!   policy they use (salvage vs. drop) is where the gcc/clang
//!   personalities of the paper differ.
//!
//! Memory is modelled with named *slots* (stack locations for locals
//! and spills) and *globals*; scalar locals start life in slots (the
//! C-at-O0 model) and are promoted to registers by the `mem2reg` pass.
//!
//! Analyses provided: predecessor/successor maps, reverse postorder,
//! dominator tree, natural-loop detection, per-block register liveness,
//! and a structural verifier used in tests and between passes.

pub mod builder;
pub mod cfg;
pub mod dom;
pub mod inst;
pub mod liveness;
pub mod loops;
pub mod module;
pub mod printer;
pub mod profile;
pub mod verify;

pub use builder::FunctionBuilder;
pub use cfg::{postorder, predecessors, reachable_blocks, reverse_postorder, successors};
pub use dom::DomTree;
pub use inst::{BinOp, DbgLoc, Inst, MemEffect, Op, Terminator, UnOp, Value};
pub use liveness::Liveness;
pub use loops::{Loop, LoopForest};
pub use module::{
    Block, BlockId, FuncId, Function, GlobalId, GlobalInfo, Module, SlotId, SlotInfo, VReg, VarId,
    VarInfo,
};
pub use profile::Profile;
pub use verify::{verify_function, verify_module, VerifyError};
