//! Natural-loop detection from back edges in the dominator tree.

use crate::cfg::predecessors;
use crate::dom::DomTree;
use crate::module::{BlockId, Function};
use std::collections::HashSet;

/// A natural loop: a header plus the set of blocks that reach the
/// header's back edges without passing through the header.
#[derive(Debug, Clone)]
pub struct Loop {
    pub header: BlockId,
    /// All blocks in the loop, including the header.
    pub blocks: HashSet<BlockId>,
    /// Blocks inside the loop with a successor outside (exiting blocks).
    pub exiting: Vec<BlockId>,
    /// The back-edge sources (latches).
    pub latches: Vec<BlockId>,
    /// Nesting depth (1 = outermost).
    pub depth: u32,
}

impl Loop {
    /// Whether the loop contains block `b`.
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.contains(&b)
    }
}

/// All natural loops of a function, outermost first.
#[derive(Debug, Clone, Default)]
pub struct LoopForest {
    pub loops: Vec<Loop>,
}

impl LoopForest {
    /// Detects loops in `f` using `dom`.
    pub fn compute(f: &Function, dom: &DomTree) -> Self {
        let preds = predecessors(f);
        // Find back edges: an edge (b -> h) where h dominates b.
        let mut headers: Vec<(BlockId, Vec<BlockId>)> = Vec::new();
        for b in f.block_ids() {
            if !dom.is_reachable(b) {
                continue;
            }
            for s in f.block(b).term.successors() {
                if dom.dominates(s, b) {
                    match headers.iter_mut().find(|(h, _)| *h == s) {
                        Some((_, latches)) => latches.push(b),
                        None => headers.push((s, vec![b])),
                    }
                }
            }
        }

        let mut loops = Vec::new();
        for (header, latches) in headers {
            let mut blocks: HashSet<BlockId> = HashSet::new();
            blocks.insert(header);
            let mut stack: Vec<BlockId> = latches.clone();
            while let Some(b) = stack.pop() {
                if blocks.insert(b) {
                    for &p in &preds[b.index()] {
                        if dom.is_reachable(p) {
                            stack.push(p);
                        }
                    }
                }
            }
            let exiting = blocks
                .iter()
                .copied()
                .filter(|&b| {
                    f.block(b)
                        .term
                        .successors()
                        .iter()
                        .any(|s| !blocks.contains(s))
                })
                .collect();
            loops.push(Loop {
                header,
                blocks,
                exiting,
                latches,
                depth: 1,
            });
        }

        // Nesting depth: a loop is nested in every other loop that
        // contains its header (and is not itself).
        let containers: Vec<u32> = loops
            .iter()
            .map(|l| {
                loops
                    .iter()
                    .filter(|o| o.header != l.header && o.blocks.contains(&l.header))
                    .count() as u32
                    + 1
            })
            .collect();
        for (l, d) in loops.iter_mut().zip(containers) {
            l.depth = d;
        }
        loops.sort_by_key(|l| l.depth);
        LoopForest { loops }
    }

    /// The innermost loop containing `b`, if any.
    pub fn innermost_containing(&self, b: BlockId) -> Option<&Loop> {
        self.loops
            .iter()
            .filter(|l| l.contains(b))
            .max_by_key(|l| l.depth)
    }

    /// The loop with header `h`, if any.
    pub fn loop_with_header(&self, h: BlockId) -> Option<&Loop> {
        self.loops.iter().find(|l| l.header == h)
    }

    /// The nesting depth of block `b` (0 = not in a loop).
    pub fn depth_of(&self, b: BlockId) -> u32 {
        self.innermost_containing(b).map_or(0, |l| l.depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Terminator, Value};
    use crate::module::{Block, FuncAttrs, FuncId, Function, VReg};

    fn function_with(blocks: Vec<Block>) -> Function {
        Function {
            name: "t".into(),
            id: FuncId(0),
            params: vec![],
            blocks,
            entry: BlockId(0),
            vreg_count: 1,
            vars: vec![],
            slots: vec![],
            line: 1,
            end_line: 1,
            attrs: FuncAttrs::default(),
        }
    }

    fn branch(t: u32, e: u32) -> Terminator {
        Terminator::Branch {
            cond: Value::Reg(VReg(0)),
            then_bb: BlockId(t),
            else_bb: BlockId(e),
            prob_then: None,
        }
    }

    #[test]
    fn single_loop() {
        // bb0 -> bb1(header) -> {bb2(body), bb3}; bb2 -> bb1
        let f = function_with(vec![
            Block::new(Terminator::Jump(BlockId(1))),
            Block::new(branch(2, 3)),
            Block::new(Terminator::Jump(BlockId(1))),
            Block::new(Terminator::Ret(None)),
        ]);
        let dom = DomTree::compute(&f);
        let forest = LoopForest::compute(&f, &dom);
        assert_eq!(forest.loops.len(), 1);
        let l = &forest.loops[0];
        assert_eq!(l.header, BlockId(1));
        assert!(l.contains(BlockId(2)));
        assert!(!l.contains(BlockId(0)));
        assert_eq!(l.latches, vec![BlockId(2)]);
        assert_eq!(l.exiting, vec![BlockId(1)]);
        assert_eq!(l.depth, 1);
    }

    #[test]
    fn nested_loops() {
        // bb0 -> bb1(outer hdr) -> {bb2(inner hdr), bb5}
        // bb2 -> {bb3(inner body), bb4}; bb3 -> bb2; bb4 -> bb1
        let f = function_with(vec![
            Block::new(Terminator::Jump(BlockId(1))),
            Block::new(branch(2, 5)),
            Block::new(branch(3, 4)),
            Block::new(Terminator::Jump(BlockId(2))),
            Block::new(Terminator::Jump(BlockId(1))),
            Block::new(Terminator::Ret(None)),
        ]);
        let dom = DomTree::compute(&f);
        let forest = LoopForest::compute(&f, &dom);
        assert_eq!(forest.loops.len(), 2);
        let outer = forest.loop_with_header(BlockId(1)).unwrap();
        let inner = forest.loop_with_header(BlockId(2)).unwrap();
        assert_eq!(outer.depth, 1);
        assert_eq!(inner.depth, 2);
        assert!(outer.contains(BlockId(3)));
        assert_eq!(forest.depth_of(BlockId(3)), 2);
        assert_eq!(forest.depth_of(BlockId(4)), 1);
        assert_eq!(forest.depth_of(BlockId(5)), 0);
    }

    #[test]
    fn no_loops_in_acyclic_cfg() {
        let f = function_with(vec![
            Block::new(branch(1, 2)),
            Block::new(Terminator::Jump(BlockId(2))),
            Block::new(Terminator::Ret(None)),
        ]);
        let dom = DomTree::compute(&f);
        let forest = LoopForest::compute(&f, &dom);
        assert!(forest.loops.is_empty());
        assert!(forest.innermost_containing(BlockId(1)).is_none());
    }

    #[test]
    fn self_loop() {
        let f = function_with(vec![
            Block::new(Terminator::Jump(BlockId(1))),
            Block::new(branch(1, 2)),
            Block::new(Terminator::Ret(None)),
        ]);
        let dom = DomTree::compute(&f);
        let forest = LoopForest::compute(&f, &dom);
        assert_eq!(forest.loops.len(), 1);
        assert_eq!(forest.loops[0].header, BlockId(1));
        assert_eq!(forest.loops[0].latches, vec![BlockId(1)]);
    }
}
