//! Textual dump of IR modules, for debugging and golden tests.

use crate::inst::{DbgLoc, Op, Terminator, Value};
use crate::module::{Function, Module};
use std::fmt::Write;

/// Renders a module as readable IR text.
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    for g in &m.globals {
        let _ = writeln!(out, "global {} : {} words = {}", g.name, g.size, g.init);
    }
    for &id in &m.order {
        out.push_str(&print_function(m.func(id)));
        out.push('\n');
    }
    out
}

/// Renders one function as readable IR text.
pub fn print_function(f: &Function) -> String {
    let mut out = String::new();
    let params: Vec<String> = f.params.iter().map(|r| r.to_string()).collect();
    let _ = writeln!(out, "func {}({}) {{", f.name, params.join(", "));
    for b in f.block_ids() {
        let blk = f.block(b);
        let _ = writeln!(out, "{b}:");
        for inst in &blk.insts {
            let _ = writeln!(out, "    {}  ; line {}", print_op(&inst.op, f), inst.line);
        }
        let term = match &blk.term {
            Terminator::Jump(t) => format!("jmp {t}"),
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
                prob_then,
            } => {
                let p = prob_then.map_or(String::new(), |p| format!(" !prob {p}‰"));
                format!("br {} ? {then_bb} : {else_bb}{p}", print_val(*cond))
            }
            Terminator::Ret(None) => "ret".into(),
            Terminator::Ret(Some(v)) => format!("ret {}", print_val(*v)),
        };
        let _ = writeln!(out, "    {}  ; line {}", term, blk.term_line);
    }
    out.push_str("}\n");
    out
}

fn print_val(v: Value) -> String {
    match v {
        Value::Reg(r) => r.to_string(),
        Value::Const(c) => c.to_string(),
    }
}

fn print_op(op: &Op, f: &Function) -> String {
    match op {
        Op::Copy { dst, src } => format!("{dst} = {}", print_val(*src)),
        Op::Un { dst, op, src } => format!("{dst} = {}{}", op.symbol(), print_val(*src)),
        Op::Bin { dst, op, lhs, rhs } => format!(
            "{dst} = {} {} {}",
            print_val(*lhs),
            op.symbol(),
            print_val(*rhs)
        ),
        Op::Select {
            dst,
            cond,
            on_true,
            on_false,
        } => format!(
            "{dst} = select {} ? {} : {}",
            print_val(*cond),
            print_val(*on_true),
            print_val(*on_false)
        ),
        Op::LoadSlot { dst, slot } => format!("{dst} = load {slot}"),
        Op::StoreSlot { slot, src } => format!("store {slot}, {}", print_val(*src)),
        Op::LoadIdx { dst, slot, index } => {
            format!("{dst} = load {slot}[{}]", print_val(*index))
        }
        Op::StoreIdx { slot, index, src } => {
            format!("store {slot}[{}], {}", print_val(*index), print_val(*src))
        }
        Op::LoadGlobal { dst, global } => format!("{dst} = load {global}"),
        Op::StoreGlobal { global, src } => format!("store {global}, {}", print_val(*src)),
        Op::LoadGIdx { dst, global, index } => {
            format!("{dst} = load {global}[{}]", print_val(*index))
        }
        Op::StoreGIdx { global, index, src } => {
            format!("store {global}[{}], {}", print_val(*index), print_val(*src))
        }
        Op::Call { dst, callee, args } => {
            let args: Vec<String> = args.iter().map(|a| print_val(*a)).collect();
            format!("{dst} = call {callee}({})", args.join(", "))
        }
        Op::In { dst, index } => format!("{dst} = in({})", print_val(*index)),
        Op::InLen { dst } => format!("{dst} = in_len()"),
        Op::Out { src } => format!("out({})", print_val(*src)),
        Op::DbgValue { var, loc } => {
            let name = f.vars.get(var.index()).map_or("<bad>", |v| v.name.as_str());
            let loc = match loc {
                DbgLoc::Value(v) => print_val(*v),
                DbgLoc::Slot(s) => s.to_string(),
                DbgLoc::Undef => "undef".into(),
            };
            format!("dbg.value {name} = {loc}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::BinOp;
    use crate::module::{VReg, VarInfo};

    #[test]
    fn prints_function_text() {
        let mut b = FunctionBuilder::new("f", 1, 1);
        let var = b.var(VarInfo {
            name: "x".into(),
            is_param: false,
            is_array: false,
            decl_line: 2,
        });
        let t = b.bin(BinOp::Add, Value::Reg(VReg(0)), Value::Const(1), 2);
        b.dbg_value(var, DbgLoc::Value(Value::Reg(t)), 2);
        b.ret(Some(Value::Reg(t)), 3);
        let f = b.finish(4);
        let text = print_function(&f);
        assert!(text.contains("func f(%0)"));
        assert!(text.contains("%1 = %0 + 1"));
        assert!(text.contains("dbg.value x = %1"));
        assert!(text.contains("ret %1"));
    }
}
