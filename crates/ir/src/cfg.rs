//! CFG utilities: successor/predecessor maps and block orderings.

use crate::module::{BlockId, Function};
use std::collections::HashSet;

/// Successors of each block (indexed by block id; dead blocks get empty
/// vectors).
pub fn successors(f: &Function) -> Vec<Vec<BlockId>> {
    f.blocks
        .iter()
        .map(|b| if b.dead { vec![] } else { b.term.successors() })
        .collect()
}

/// Predecessors of each block (indexed by block id).
pub fn predecessors(f: &Function) -> Vec<Vec<BlockId>> {
    let mut preds = vec![Vec::new(); f.blocks.len()];
    for b in f.block_ids() {
        for s in f.block(b).term.successors() {
            preds[s.index()].push(b);
        }
    }
    preds
}

/// The set of blocks reachable from the entry.
pub fn reachable_blocks(f: &Function) -> HashSet<BlockId> {
    let mut seen = HashSet::new();
    let mut stack = vec![f.entry];
    while let Some(b) = stack.pop() {
        if !seen.insert(b) || f.block(b).dead {
            continue;
        }
        for s in f.block(b).term.successors() {
            if !seen.contains(&s) {
                stack.push(s);
            }
        }
    }
    seen.retain(|b| !f.block(*b).dead);
    seen
}

/// Postorder over reachable blocks.
pub fn postorder(f: &Function) -> Vec<BlockId> {
    let mut order = Vec::new();
    let mut state: Vec<u8> = vec![0; f.blocks.len()]; // 0 unseen, 1 open, 2 done
                                                      // Iterative DFS with an explicit stack of (block, next-successor).
    let mut stack: Vec<(BlockId, usize)> = vec![(f.entry, 0)];
    state[f.entry.index()] = 1;
    while let Some(&mut (b, ref mut next)) = stack.last_mut() {
        let succs = f.block(b).term.successors();
        if *next < succs.len() {
            let s = succs[*next];
            *next += 1;
            if state[s.index()] == 0 && !f.block(s).dead {
                state[s.index()] = 1;
                stack.push((s, 0));
            }
        } else {
            state[b.index()] = 2;
            order.push(b);
            stack.pop();
        }
    }
    order
}

/// Reverse postorder over reachable blocks (a topological-ish order in
/// which every block precedes its non-back-edge successors).
pub fn reverse_postorder(f: &Function) -> Vec<BlockId> {
    let mut po = postorder(f);
    po.reverse();
    po
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Terminator, Value};
    use crate::module::{Block, FuncAttrs, FuncId, Function, VReg};

    /// A diamond: bb0 -> {bb1, bb2} -> bb3.
    fn diamond() -> Function {
        let mut f = Function {
            name: "d".into(),
            id: FuncId(0),
            params: vec![],
            blocks: vec![],
            entry: BlockId(0),
            vreg_count: 1,
            vars: vec![],
            slots: vec![],
            line: 1,
            end_line: 1,
            attrs: FuncAttrs::default(),
        };
        f.blocks.push(Block::new(Terminator::Branch {
            cond: Value::Reg(VReg(0)),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
            prob_then: None,
        }));
        f.blocks.push(Block::new(Terminator::Jump(BlockId(3))));
        f.blocks.push(Block::new(Terminator::Jump(BlockId(3))));
        f.blocks.push(Block::new(Terminator::Ret(None)));
        f
    }

    #[test]
    fn preds_and_succs() {
        let f = diamond();
        let succs = successors(&f);
        assert_eq!(succs[0], vec![BlockId(1), BlockId(2)]);
        let preds = predecessors(&f);
        assert_eq!(preds[3], vec![BlockId(1), BlockId(2)]);
        assert!(preds[0].is_empty());
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_all() {
        let f = diamond();
        let rpo = reverse_postorder(&f);
        assert_eq!(rpo[0], BlockId(0));
        assert_eq!(rpo.len(), 4);
        assert_eq!(*rpo.last().unwrap(), BlockId(3));
    }

    #[test]
    fn unreachable_blocks_excluded() {
        let mut f = diamond();
        // Orphan block.
        f.new_block(Terminator::Ret(None));
        let reach = reachable_blocks(&f);
        assert_eq!(reach.len(), 4);
        assert!(!reach.contains(&BlockId(4)));
        assert_eq!(postorder(&f).len(), 4);
    }

    #[test]
    fn dead_blocks_excluded() {
        let mut f = diamond();
        // Retarget bb0 else to bb1 and kill bb2.
        f.block_mut(BlockId(0)).term = Terminator::Branch {
            cond: Value::Reg(VReg(0)),
            then_bb: BlockId(1),
            else_bb: BlockId(1),
            prob_then: None,
        };
        f.remove_block(BlockId(2));
        let reach = reachable_blocks(&f);
        assert!(!reach.contains(&BlockId(2)));
        assert_eq!(reach.len(), 3);
    }
}
