//! A convenience builder for constructing IR functions.
//!
//! Used by the frontend and by tests that need hand-built CFGs.

use crate::inst::{BinOp, DbgLoc, Inst, Op, Terminator, UnOp, Value};
use crate::module::{Block, BlockId, FuncAttrs, FuncId, Function, SlotId, VReg, VarId, VarInfo};

/// Builds one [`Function`] block by block.
///
/// The builder keeps a *current block*; instruction-emitting methods
/// append to it. Every emitting method takes the source line of the
/// construct it implements.
pub struct FunctionBuilder {
    func: Function,
    current: BlockId,
    /// Whether the current block has been sealed with a real terminator.
    terminated: bool,
}

impl FunctionBuilder {
    /// Starts a function named `name` with `nparams` parameters. The
    /// parameter registers are `%0..%nparams`.
    pub fn new(name: &str, nparams: usize, line: u32) -> Self {
        let mut func = Function {
            name: name.to_owned(),
            id: FuncId(0),
            params: (0..nparams as u32).map(VReg).collect(),
            blocks: vec![Block::new(Terminator::Ret(None))],
            entry: BlockId(0),
            vreg_count: nparams as u32,
            vars: Vec::new(),
            slots: Vec::new(),
            line,
            end_line: line,
            attrs: FuncAttrs::default(),
        };
        func.blocks[0].term_line = 0;
        FunctionBuilder {
            func,
            current: BlockId(0),
            terminated: false,
        }
    }

    /// The block currently being filled.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    /// Whether the current block already has a terminator (further
    /// instructions would be unreachable).
    pub fn is_terminated(&self) -> bool {
        self.terminated
    }

    /// Creates a new (empty, unterminated) block and returns its id.
    pub fn create_block(&mut self) -> BlockId {
        self.func.new_block(Terminator::Ret(None))
    }

    /// Switches the insertion point to `b`.
    pub fn switch_to(&mut self, b: BlockId) {
        self.current = b;
        self.terminated = false;
    }

    /// Allocates a fresh virtual register.
    pub fn vreg(&mut self) -> VReg {
        self.func.new_vreg()
    }

    /// Registers a source variable.
    pub fn var(&mut self, info: VarInfo) -> VarId {
        self.func.new_var(info)
    }

    /// Allocates a stack slot of `size` words for `var`.
    pub fn slot(&mut self, size: u32, var: Option<VarId>) -> SlotId {
        self.func.new_slot(size, var)
    }

    /// Appends a raw instruction to the current block.
    pub fn push(&mut self, inst: Inst) {
        if self.terminated {
            return; // dead code after return/break: silently dropped
        }
        self.func.blocks[self.current.index()].insts.push(inst);
    }

    /// Emits `dst = op(...)` style helpers.
    pub fn copy(&mut self, src: Value, line: u32) -> VReg {
        let dst = self.vreg();
        self.push(Inst::new(Op::Copy { dst, src }, line));
        dst
    }

    pub fn bin(&mut self, op: BinOp, lhs: Value, rhs: Value, line: u32) -> VReg {
        let dst = self.vreg();
        self.push(Inst::new(Op::Bin { dst, op, lhs, rhs }, line));
        dst
    }

    pub fn un(&mut self, op: UnOp, src: Value, line: u32) -> VReg {
        let dst = self.vreg();
        self.push(Inst::new(Op::Un { dst, op, src }, line));
        dst
    }

    /// Emits a debug intrinsic binding `var` to `loc`.
    pub fn dbg_value(&mut self, var: VarId, loc: DbgLoc, line: u32) {
        self.push(Inst::new(Op::DbgValue { var, loc }, line));
    }

    /// Terminates the current block with a jump and leaves the
    /// insertion point on the (now sealed) block.
    pub fn jump(&mut self, target: BlockId, line: u32) {
        self.terminate(Terminator::Jump(target), line);
    }

    /// Terminates the current block with a conditional branch.
    pub fn branch(&mut self, cond: Value, then_bb: BlockId, else_bb: BlockId, line: u32) {
        self.terminate(
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
                prob_then: None,
            },
            line,
        );
    }

    /// Terminates the current block with a return.
    pub fn ret(&mut self, value: Option<Value>, line: u32) {
        self.terminate(Terminator::Ret(value), line);
    }

    fn terminate(&mut self, term: Terminator, line: u32) {
        if self.terminated {
            return;
        }
        let blk = &mut self.func.blocks[self.current.index()];
        blk.term = term;
        blk.term_line = line;
        self.terminated = true;
    }

    /// Finishes the function. Unterminated blocks keep their default
    /// `ret` terminator (this matches C's implicit return).
    pub fn finish(mut self, end_line: u32) -> Function {
        self.func.end_line = end_line;
        self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_straight_line_code() {
        let mut b = FunctionBuilder::new("f", 1, 1);
        let p = b.func.params[0];
        let t = b.bin(BinOp::Add, Value::Reg(p), Value::Const(1), 2);
        b.ret(Some(Value::Reg(t)), 3);
        let f = b.finish(4);
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.blocks[0].insts.len(), 1);
        assert!(matches!(f.blocks[0].term, Terminator::Ret(Some(_))));
        assert_eq!(f.end_line, 4);
    }

    #[test]
    fn instructions_after_terminator_are_dropped() {
        let mut b = FunctionBuilder::new("f", 0, 1);
        b.ret(None, 2);
        let dead = b.copy(Value::Const(1), 3);
        b.ret(Some(Value::Reg(dead)), 4);
        let f = b.finish(5);
        assert!(f.blocks[0].insts.is_empty());
        assert!(matches!(f.blocks[0].term, Terminator::Ret(None)));
    }

    #[test]
    fn multi_block_construction() {
        let mut b = FunctionBuilder::new("f", 1, 1);
        let then_bb = b.create_block();
        let else_bb = b.create_block();
        let join = b.create_block();
        b.branch(Value::Reg(VReg(0)), then_bb, else_bb, 2);
        b.switch_to(then_bb);
        b.jump(join, 3);
        b.switch_to(else_bb);
        b.jump(join, 4);
        b.switch_to(join);
        b.ret(None, 5);
        let f = b.finish(6);
        assert_eq!(f.blocks.len(), 4);
        assert_eq!(
            f.block(BlockId(0)).term.successors(),
            vec![then_bb, else_bb]
        );
    }
}
