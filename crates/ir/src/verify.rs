//! Structural verifier for IR modules.
//!
//! Run between passes in tests (and on demand in the pass manager's
//! checked mode) to catch malformed IR early: dangling block targets,
//! out-of-range registers/slots/vars/globals, and branches into dead
//! blocks.

use crate::module::{Function, Module};
use std::fmt;

/// A verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    pub func: String,
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IR verify failed in `{}`: {}", self.func, self.message)
    }
}

impl std::error::Error for VerifyError {}

/// Verifies every function of `m`.
pub fn verify_module(m: &Module) -> Result<(), VerifyError> {
    for (i, f) in m.funcs.iter().enumerate() {
        if f.id.index() != i {
            return Err(VerifyError {
                func: f.name.clone(),
                message: format!("function id {} does not match position {i}", f.id),
            });
        }
        verify_function_in(f, Some(m))?;
    }
    // Emission order must be a permutation of the function ids.
    let mut seen = vec![false; m.funcs.len()];
    for id in &m.order {
        if id.index() >= m.funcs.len() || seen[id.index()] {
            return Err(VerifyError {
                func: String::new(),
                message: "module emission order is not a permutation".into(),
            });
        }
        seen[id.index()] = true;
    }
    if !seen.iter().all(|&s| s) {
        return Err(VerifyError {
            func: String::new(),
            message: "module emission order misses functions".into(),
        });
    }
    Ok(())
}

/// Verifies a single function without module context (calls unchecked).
pub fn verify_function(f: &Function) -> Result<(), VerifyError> {
    verify_function_in(f, None)
}

fn verify_function_in(f: &Function, m: Option<&Module>) -> Result<(), VerifyError> {
    let err = |message: String| VerifyError {
        func: f.name.clone(),
        message,
    };
    if f.entry.index() >= f.blocks.len() {
        return Err(err("entry block out of range".into()));
    }
    if f.blocks[f.entry.index()].dead {
        return Err(err("entry block is dead".into()));
    }
    for b in f.block_ids() {
        let blk = f.block(b);
        for (i, inst) in blk.insts.iter().enumerate() {
            let at = |what: &str| err(format!("{what} in {b}, inst {i}"));
            if let Some(d) = inst.op.def() {
                if d.index() >= f.vreg_count as usize {
                    return Err(at("destination register out of range"));
                }
            }
            let mut bad_use = false;
            inst.op.for_each_use(|v| {
                if let Some(r) = v.as_reg() {
                    if r.index() >= f.vreg_count as usize {
                        bad_use = true;
                    }
                }
            });
            if bad_use {
                return Err(at("operand register out of range"));
            }
            match &inst.op {
                crate::inst::Op::LoadSlot { slot, .. }
                | crate::inst::Op::StoreSlot { slot, .. }
                | crate::inst::Op::LoadIdx { slot, .. }
                | crate::inst::Op::StoreIdx { slot, .. }
                    if slot.index() >= f.slots.len() =>
                {
                    return Err(at("slot out of range"));
                }
                crate::inst::Op::LoadGlobal { global, .. }
                | crate::inst::Op::StoreGlobal { global, .. }
                | crate::inst::Op::LoadGIdx { global, .. }
                | crate::inst::Op::StoreGIdx { global, .. } => {
                    if let Some(m) = m {
                        if global.index() >= m.globals.len() {
                            return Err(at("global out of range"));
                        }
                    }
                }
                crate::inst::Op::Call { callee, .. } => {
                    if let Some(m) = m {
                        if callee.index() >= m.funcs.len() {
                            return Err(at("callee out of range"));
                        }
                    }
                }
                crate::inst::Op::DbgValue { var, .. } if var.index() >= f.vars.len() => {
                    return Err(at("debug variable out of range"));
                }
                _ => {}
            }
        }
        for s in blk.term.successors() {
            if s.index() >= f.blocks.len() {
                return Err(err(format!("{b} branches to out-of-range {s}")));
            }
            if f.block(s).dead {
                return Err(err(format!("{b} branches to dead {s}")));
            }
        }
        let mut bad_term_use = false;
        blk.term.for_each_use(|v| {
            if let Some(r) = v.as_reg() {
                if r.index() >= f.vreg_count as usize {
                    bad_term_use = true;
                }
            }
        });
        if bad_term_use {
            return Err(err(format!("{b} terminator uses out-of-range register")));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{Inst, Op, Terminator, Value};
    use crate::module::{BlockId, GlobalInfo, Module, VReg};

    fn ok_function() -> crate::module::Function {
        let mut b = FunctionBuilder::new("f", 1, 1);
        let t = b.copy(Value::Reg(VReg(0)), 2);
        b.ret(Some(Value::Reg(t)), 3);
        b.finish(4)
    }

    #[test]
    fn accepts_valid_function() {
        verify_function(&ok_function()).unwrap();
    }

    #[test]
    fn rejects_out_of_range_register() {
        let mut f = ok_function();
        f.blocks[0].insts.push(Inst::synth(Op::Copy {
            dst: VReg(99),
            src: Value::Const(0),
        }));
        let e = verify_function(&f).unwrap_err();
        assert!(e.message.contains("destination register"));
    }

    #[test]
    fn rejects_branch_to_dead_block() {
        let mut f = ok_function();
        let dead = f.new_block(Terminator::Ret(None));
        f.remove_block(dead);
        f.blocks[0].term = Terminator::Jump(dead);
        let e = verify_function(&f).unwrap_err();
        assert!(e.message.contains("dead"));
    }

    #[test]
    fn rejects_out_of_range_target() {
        let mut f = ok_function();
        f.blocks[0].term = Terminator::Jump(BlockId(42));
        let e = verify_function(&f).unwrap_err();
        assert!(e.message.contains("out-of-range"));
    }

    #[test]
    fn module_checks_globals_and_order() {
        let mut m = Module::new();
        let fid = m.add_function(ok_function());
        m.add_global(GlobalInfo {
            name: "x".into(),
            size: 1,
            init: 0,
            line: 1,
        });
        verify_module(&m).unwrap();

        // Break the emission order.
        m.order = vec![fid, fid];
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("permutation"));
    }

    #[test]
    fn module_rejects_bad_global_ref() {
        let mut m = Module::new();
        let mut f = ok_function();
        f.blocks[0].insts.push(Inst::synth(Op::LoadGlobal {
            dst: VReg(1),
            global: crate::module::GlobalId(5),
        }));
        f.vreg_count = 2;
        m.add_function(f);
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("global out of range"));
    }
}
