//! IR containers: modules, functions, blocks, and their id types.

use crate::inst::{Inst, Terminator};
use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// The raw index.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }
    };
}

id_type!(
    /// A virtual register.
    VReg,
    "%"
);
id_type!(
    /// A basic-block id within a function.
    BlockId,
    "bb"
);
id_type!(
    /// A source-level variable id within a function (locals and params).
    VarId,
    "var"
);
id_type!(
    /// A stack slot id within a function (scalar homes, arrays, spills).
    SlotId,
    "slot"
);
id_type!(
    /// A global variable id within a module.
    GlobalId,
    "@g"
);
id_type!(
    /// A function id within a module.
    FuncId,
    "@f"
);

/// A basic block: straight-line instructions plus one terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    pub insts: Vec<Inst>,
    pub term: Terminator,
    /// Source line of the terminator (e.g. the `if`/`while` condition
    /// or the `return`); 0 when unknown.
    pub term_line: u32,
    /// Tombstone flag: dead blocks are skipped by analyses and codegen
    /// but keep their id so other blocks need no renumbering.
    pub dead: bool,
}

impl Block {
    /// A new empty block ending in `term`.
    pub fn new(term: Terminator) -> Self {
        Block {
            insts: Vec::new(),
            term,
            term_line: 0,
            dead: false,
        }
    }
}

/// Metadata for one source-level variable of a function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarInfo {
    pub name: String,
    pub is_param: bool,
    pub is_array: bool,
    pub decl_line: u32,
}

/// Metadata for one stack slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotInfo {
    /// Size in 8-byte words (1 for scalars).
    pub size: u32,
    /// The source variable the slot is the home of, if any. Spill slots
    /// introduced by the register allocator have `None`.
    pub var: Option<VarId>,
}

/// Function-level attributes set by interprocedural analyses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FuncAttrs {
    /// Set by `ipa-pure-const`: no side effects, no memory writes, no
    /// I/O; calls to the function can be CSE'd and dead-call-eliminated.
    pub pure_const: bool,
    /// Number of call sites in the module (filled by the inliner's
    /// scan; used by `inline-functions-called-once`).
    pub call_sites: u32,
}

/// A function in IR form.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    pub name: String,
    pub id: FuncId,
    /// Virtual registers holding the parameters on entry.
    pub params: Vec<VReg>,
    pub blocks: Vec<Block>,
    pub entry: BlockId,
    /// Number of virtual registers allocated so far.
    pub vreg_count: u32,
    pub vars: Vec<VarInfo>,
    pub slots: Vec<SlotInfo>,
    /// Line of the function header in the source.
    pub line: u32,
    /// Line of the closing brace.
    pub end_line: u32,
    pub attrs: FuncAttrs,
}

impl Function {
    /// Allocates a fresh virtual register.
    pub fn new_vreg(&mut self) -> VReg {
        let r = VReg(self.vreg_count);
        self.vreg_count += 1;
        r
    }

    /// Allocates a fresh block with the given terminator, returning its id.
    pub fn new_block(&mut self, term: Terminator) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block::new(term));
        id
    }

    /// Allocates a new stack slot.
    pub fn new_slot(&mut self, size: u32, var: Option<VarId>) -> SlotId {
        let id = SlotId(self.slots.len() as u32);
        self.slots.push(SlotInfo { size, var });
        id
    }

    /// Registers a new source variable.
    pub fn new_var(&mut self, info: VarInfo) -> VarId {
        let id = VarId(self.vars.len() as u32);
        self.vars.push(info);
        id
    }

    /// The block with id `b`. Panics if out of range.
    pub fn block(&self, b: BlockId) -> &Block {
        &self.blocks[b.index()]
    }

    /// Mutable access to block `b`.
    pub fn block_mut(&mut self, b: BlockId) -> &mut Block {
        &mut self.blocks[b.index()]
    }

    /// Iterates over the ids of live (non-tombstoned) blocks.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| !b.dead)
            .map(|(i, _)| BlockId(i as u32))
    }

    /// Marks `b` dead. The entry block cannot be removed.
    pub fn remove_block(&mut self, b: BlockId) {
        assert_ne!(b, self.entry, "cannot remove the entry block");
        let blk = self.block_mut(b);
        blk.dead = true;
        blk.insts.clear();
        blk.term = Terminator::Ret(None);
    }

    /// Total number of instructions in live blocks (excluding debug
    /// intrinsics), a cheap size proxy for inlining heuristics.
    pub fn code_size(&self) -> usize {
        self.block_ids()
            .map(|b| {
                self.block(b)
                    .insts
                    .iter()
                    .filter(|i| !i.op.is_dbg())
                    .count()
                    + 1
            })
            .sum()
    }
}

/// A module-level global variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalInfo {
    pub name: String,
    /// Size in words: 1 for scalars, N for arrays.
    pub size: u32,
    /// Initial value of word 0 (arrays are zero-initialized).
    pub init: i64,
    pub line: u32,
}

/// A whole translation unit in IR form.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    pub funcs: Vec<Function>,
    pub globals: Vec<GlobalInfo>,
    /// Emission order of functions into the object file. The
    /// `toplevel-reorder` pass permutes this; everything else preserves
    /// source order.
    pub order: Vec<FuncId>,
}

impl Module {
    /// An empty module.
    pub fn new() -> Self {
        Module {
            funcs: Vec::new(),
            globals: Vec::new(),
            order: Vec::new(),
        }
    }

    /// Adds a function, returning its id. The function's `id` field is
    /// updated to match.
    pub fn add_function(&mut self, mut f: Function) -> FuncId {
        let id = FuncId(self.funcs.len() as u32);
        f.id = id;
        self.funcs.push(f);
        self.order.push(id);
        id
    }

    /// Adds a global, returning its id.
    pub fn add_global(&mut self, g: GlobalInfo) -> GlobalId {
        let id = GlobalId(self.globals.len() as u32);
        self.globals.push(g);
        id
    }

    /// Function lookup by id.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.index()]
    }

    /// Mutable function lookup by id.
    pub fn func_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.funcs[id.index()]
    }

    /// Function lookup by name.
    pub fn func_by_name(&self, name: &str) -> Option<&Function> {
        self.funcs.iter().find(|f| f.name == name)
    }

    /// Total word size of the global data area.
    pub fn globals_size(&self) -> u32 {
        self.globals.iter().map(|g| g.size).sum()
    }
}

impl Default for Module {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Terminator;

    fn empty_function() -> Function {
        Function {
            name: "f".into(),
            id: FuncId(0),
            params: vec![],
            blocks: vec![Block::new(Terminator::Ret(None))],
            entry: BlockId(0),
            vreg_count: 0,
            vars: vec![],
            slots: vec![],
            line: 1,
            end_line: 1,
            attrs: FuncAttrs::default(),
        }
    }

    #[test]
    fn id_display() {
        assert_eq!(VReg(3).to_string(), "%3");
        assert_eq!(BlockId(0).to_string(), "bb0");
        assert_eq!(GlobalId(2).to_string(), "@g2");
    }

    #[test]
    fn vreg_allocation_is_sequential() {
        let mut f = empty_function();
        assert_eq!(f.new_vreg(), VReg(0));
        assert_eq!(f.new_vreg(), VReg(1));
        assert_eq!(f.vreg_count, 2);
    }

    #[test]
    fn dead_blocks_skipped_by_block_ids() {
        let mut f = empty_function();
        let b1 = f.new_block(Terminator::Ret(None));
        f.remove_block(b1);
        let ids: Vec<_> = f.block_ids().collect();
        assert_eq!(ids, vec![BlockId(0)]);
    }

    #[test]
    #[should_panic(expected = "entry block")]
    fn cannot_remove_entry() {
        let mut f = empty_function();
        f.remove_block(BlockId(0));
    }

    #[test]
    fn module_function_registry() {
        let mut m = Module::new();
        let id = m.add_function(empty_function());
        assert_eq!(m.func(id).name, "f");
        assert_eq!(m.func(id).id, id);
        assert!(m.func_by_name("f").is_some());
        assert!(m.func_by_name("g").is_none());
        assert_eq!(m.order, vec![id]);
    }

    #[test]
    fn globals_size_sums_words() {
        let mut m = Module::new();
        m.add_global(GlobalInfo {
            name: "x".into(),
            size: 1,
            init: 7,
            line: 1,
        });
        m.add_global(GlobalInfo {
            name: "buf".into(),
            size: 16,
            init: 0,
            line: 2,
        });
        assert_eq!(m.globals_size(), 17);
    }
}
