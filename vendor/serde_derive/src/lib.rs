//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored
//! value-model serde. Implemented directly over `proc_macro` token
//! trees (no syn/quote in this offline environment), supporting the
//! shapes this workspace actually derives on: non-generic structs
//! with named fields and non-generic enums with unit, tuple, and
//! struct variants. The only `#[serde(...)]` helper recognized is
//! per-field `#[serde(default)]` (missing field → `Default::default`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving type.
enum Shape {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// A named field and whether it carries `#[serde(default)]`.
struct Field {
    name: String,
    default: bool,
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let body = match &shape {
        Shape::Struct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),")
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(vec![{pushes}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vname}(f0) => ::serde::Value::Object(vec![(\
                                 \"{vname}\".to_string(), ::serde::Serialize::to_value(f0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: String = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b}),"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Object(vec![(\
                                     \"{vname}\".to_string(), ::serde::Value::Array(vec![{items}]))]),",
                                binds.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds = fields
                                .iter()
                                .map(|f| f.name.as_str())
                                .collect::<Vec<_>>()
                                .join(", ");
                            let pushes: String = fields
                                .iter()
                                .map(|f| {
                                    let f = &f.name;
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::to_value({f})),"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(vec![(\
                                     \"{vname}\".to_string(), \
                                     ::serde::Value::Object(vec![{pushes}]))]),"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    body.parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let body = match &shape {
        Shape::Struct { name, fields } => {
            let inits: String = fields.iter().map(field_init).collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let fields = v.as_object().ok_or_else(|| \
                             ::serde::DeError::new(\"expected object for {name}\"))?;\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({name}::{0}),", v.name))
                .collect();
            let data_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vname}\" => ::std::result::Result::Ok(\
                                 {name}::{vname}(::serde::Deserialize::from_value(payload)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let gets: String = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&items[{i}])?,")
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{\n\
                                     let items = payload.as_array().ok_or_else(|| \
                                         ::serde::DeError::new(\"expected array for {name}::{vname}\"))?;\n\
                                     if items.len() != {n} {{\n\
                                         return ::std::result::Result::Err(::serde::DeError::new(\
                                             \"wrong arity for {name}::{vname}\"));\n\
                                     }}\n\
                                     ::std::result::Result::Ok({name}::{vname}({gets}))\n\
                                 }}"
                            ))
                        }
                        VariantKind::Struct(fields) => {
                            let inits: String = fields.iter().map(field_init).collect();
                            Some(format!(
                                "\"{vname}\" => {{\n\
                                     let fields = payload.as_object().ok_or_else(|| \
                                         ::serde::DeError::new(\"expected object for {name}::{vname}\"))?;\n\
                                     ::std::result::Result::Ok({name}::{vname} {{ {inits} }})\n\
                                 }}"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => ::std::result::Result::Err(::serde::DeError::new(\
                                     format!(\"unknown {name} variant `{{other}}`\"))),\n\
                             }},\n\
                             ::serde::Value::Object(tagged) if tagged.len() == 1 => {{\n\
                                 let (tag, payload) = &tagged[0];\n\
                                 let _ = payload;\n\
                                 match tag.as_str() {{\n\
                                     {data_arms}\n\
                                     other => ::std::result::Result::Err(::serde::DeError::new(\
                                         format!(\"unknown {name} variant `{{other}}`\"))),\n\
                                 }}\n\
                             }}\n\
                             _ => ::std::result::Result::Err(::serde::DeError::new(\
                                 \"expected string or single-key object for {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    body.parse().expect("generated Deserialize impl parses")
}

/// One struct-field initializer for the generated `from_value`.
fn field_init(f: &Field) -> String {
    let name = &f.name;
    if f.default {
        format!("{name}: ::serde::field_or_default(fields, \"{name}\")?,")
    } else {
        format!("{name}: ::serde::field(fields, \"{name}\")?,")
    }
}

// ---------------------------------------------------------------------
// Token-tree parsing.

fn parse_shape(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive stand-in does not support generic type `{name}`");
    }
    let group = tokens[i..]
        .iter()
        .find_map(|t| match t {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g),
            _ => None,
        })
        .unwrap_or_else(|| panic!("expected braced body for `{name}`"));

    match keyword.as_str() {
        "struct" => Shape::Struct {
            name,
            fields: parse_named_fields(group.stream()),
        },
        "enum" => Shape::Enum {
            name,
            variants: parse_variants(group.stream()),
        },
        other => panic!("cannot derive for `{other}` items"),
    }
}

/// Skips `#[...]` attributes and a `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    let mut ignored = false;
    skip_attrs_and_vis_noting_default(tokens, i, &mut ignored);
}

/// Like [`skip_attrs_and_vis`], additionally setting `has_default`
/// when one of the skipped attributes is `#[serde(default)]`.
fn skip_attrs_and_vis_noting_default(tokens: &[TokenTree], i: &mut usize, has_default: &mut bool) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
                    if is_serde_default(g) {
                        *has_default = true;
                    }
                }
                *i += 2; // `#` and the bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Whether a `#[...]` bracket group is exactly `serde(default)`.
fn is_serde_default(g: &proc_macro::Group) -> bool {
    if g.delimiter() != Delimiter::Bracket {
        return false;
    }
    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
    match inner.as_slice() {
        [TokenTree::Ident(id), TokenTree::Group(args)]
            if id.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis =>
        {
            let args: Vec<TokenTree> = args.stream().into_iter().collect();
            matches!(args.as_slice(),
                [TokenTree::Ident(arg)] if arg.to_string() == "default")
        }
        _ => false,
    }
}

/// Parses `name: Type, ...` lists, returning the fields with their
/// `#[serde(default)]` markers.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut default = false;
        skip_attrs_and_vis_noting_default(&tokens, &mut i, &mut default);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected field name, found {other}"),
        };
        fields.push(Field { name, default });
        i += 1;
        // Skip `:` and the type, up to the next top-level comma. Angle
        // brackets are tracked by depth (they are punctuation, not
        // groups, so generic-argument commas would otherwise split).
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    fields
}

/// Parses enum variants.
fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name, found {other}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        // Skip to past the separating comma (discriminants like `= 3`
        // are not supported by the data model anyway).
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
    }
    variants
}

/// Counts the types in a tuple-variant payload (angle-aware).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    for t in &tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => count += 1,
                _ => {}
            }
        }
    }
    count
}
