//! Offline stand-in for the `bytes` crate: the subset this workspace
//! uses — [`Bytes`], [`BytesMut`], and the [`Buf`] / [`BufMut`]
//! traits. `Bytes` is a cheaply clonable shared buffer; reading
//! through [`Buf`] consumes a per-handle cursor, exactly like the real
//! crate's semantics for the call sites here.

use std::ops::Deref;
use std::sync::Arc;

/// Read-side trait: a cursor over a byte sequence.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_le_bytes(raw)
    }

    fn get_i64_le(&mut self) -> i64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        i64::from_le_bytes(raw)
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        let mut filled = 0;
        while filled < dst.len() {
            let chunk = self.chunk();
            let n = chunk.len().min(dst.len() - filled);
            dst[filled..filled + n].copy_from_slice(&chunk[..n]);
            filled += n;
            self.advance(n);
        }
    }
}

/// Write-side trait: an append-only byte sink.
pub trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_slice(&mut self, src: &[u8]);

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// A cheaply clonable, immutable byte buffer with an internal read
/// cursor (so it can be used as a [`Buf`]).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    /// Read cursor: [`Buf`] methods consume from here; slicing-style
    /// accessors (`len`, `iter`, `Deref`) always see the full buffer,
    /// which matches how this workspace uses fresh clones for reading.
    pos: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn iter(&self) -> std::slice::Iter<'_, u8> {
        self.data.iter()
    }

    /// The full underlying contents (ignores the read cursor).
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            data: v.into(),
            pos: 0,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes {
            data: v.into(),
            pos: 0,
        }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.data.len())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance past end of Bytes");
        self.pos += cnt;
    }
}

/// A growable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_i64_le(-9);
        let mut r = b.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_i64_le(), -9);
        assert!(!r.has_remaining());
    }

    #[test]
    fn bytes_clone_resets_nothing_but_shares_data() {
        let mut a = Bytes::from(vec![1, 2, 3]);
        let _ = a.get_u8();
        let b = a.clone();
        assert_eq!(b.remaining(), 2, "clone keeps the cursor");
        assert_eq!(a.len(), 3, "len ignores the cursor");
        assert_eq!(a, b);
    }

    #[test]
    fn indexing_and_iter_see_whole_buffer() {
        let b = Bytes::from(vec![5, 6]);
        assert_eq!(b[0], 5);
        assert_eq!(b.iter().copied().sum::<u8>(), 11);
    }
}
