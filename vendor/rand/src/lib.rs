//! Offline stand-in for `rand` 0.8. Provides the subset this
//! workspace uses: [`rngs::SmallRng`] (xoshiro256++, seeded via
//! SplitMix64 exactly like rand 0.8's implementation), the
//! [`RngCore`] / [`SeedableRng`] traits, and an [`Rng`] extension
//! trait with `gen`, `gen_range` (Lemire widening-multiply sampling),
//! and `gen_bool` (64-bit fixed-point Bernoulli).
//!
//! Determinism is the load-bearing property: every seed maps to one
//! byte stream forever, so synthesized programs and fuzzing corpora
//! are reproducible across runs and across the parallel evaluation
//! engine's worker threads.

/// Low-level generator interface.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let raw = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&raw[..rem.len()]);
        }
    }
}

/// Seedable generator interface.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a 64-bit seed with SplitMix64, as rand 0.8 does for
    /// xoshiro-family generators.
    fn seed_from_u64(mut state: u64) -> Self {
        const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(PHI);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let raw = z.to_le_bytes();
            let n = chunk.len().min(8);
            chunk.copy_from_slice(&raw[..n]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — rand 0.8's 64-bit `SmallRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut raw = [0u8; 8];
                raw.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(raw);
            }
            // An all-zero state would be a fixed point; rand avoids it
            // the same way (the SplitMix64 expansion never produces it
            // for seed_from_u64, this guards direct from_seed misuse).
            if s == [0; 4] {
                s = [
                    0x9e37_79b9_7f4a_7c15,
                    0x6c62_272e_07bb_0142,
                    0x62b8_2175_6295_c58d,
                    0x0000_0000_0000_0001,
                ];
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            // Upper half: the low bits of ++ scramblers are fine, but
            // rand 0.8 takes the high word — match that choice.
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// `StdRng` alias: same deterministic generator in this stand-in.
    pub type StdRng = SmallRng;
}

mod sample {
    use super::RngCore;

    /// Types that `gen` can produce from raw generator output.
    pub trait Standard: Sized {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    macro_rules! standard_small {
        ($($t:ty),*) => {$(
            impl Standard for $t {
                fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                    rng.next_u32() as $t
                }
            }
        )*};
    }
    standard_small!(u8, i8, u16, i16, u32, i32);

    macro_rules! standard_large {
        ($($t:ty),*) => {$(
            impl Standard for $t {
                fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    standard_large!(u64, i64, usize, isize);

    impl Standard for bool {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u32() & 1 == 1
        }
    }

    impl Standard for f64 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            // 53 uniform mantissa bits in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Standard for f32 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    /// Uniform sampling over a range, one impl per integer width.
    pub trait SampleUniform: Sized {
        fn sample_range<R: RngCore + ?Sized>(
            rng: &mut R,
            low: Self,
            high: Self,
            inclusive: bool,
        ) -> Self;
    }

    macro_rules! uniform_int {
        ($($t:ty => $unsigned:ty, $large:ty, $large_bits:expr);* $(;)?) => {$(
            impl SampleUniform for $t {
                fn sample_range<R: RngCore + ?Sized>(
                    rng: &mut R,
                    low: Self,
                    high: Self,
                    inclusive: bool,
                ) -> Self {
                    let span = if inclusive {
                        assert!(low <= high, "gen_range: empty range");
                        (high as $unsigned).wrapping_sub(low as $unsigned).wrapping_add(1) as $large
                    } else {
                        assert!(low < high, "gen_range: empty range");
                        (high as $unsigned).wrapping_sub(low as $unsigned) as $large
                    };
                    if span == 0 {
                        // Inclusive range covering the whole domain.
                        return <$large as RawFrom>::raw(rng) as $t;
                    }
                    // Lemire's widening-multiply method with a
                    // rejection zone, as rand 0.8's sample_single.
                    let zone: $large = (span << span.leading_zeros()).wrapping_sub(1);
                    loop {
                        let v: $large = <$large as RawFrom>::raw(rng);
                        let big = (v as u128) * (span as u128);
                        let hi = (big >> $large_bits) as $large;
                        let lo = big as $large;
                        if lo <= zone {
                            return low.wrapping_add(hi as $t);
                        }
                    }
                }
            }
        )*};
    }

    /// Raw full-width draw used by the rejection loop.
    pub trait RawFrom: Sized {
        fn raw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }
    impl RawFrom for u32 {
        fn raw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u32()
        }
    }
    impl RawFrom for u64 {
        fn raw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64()
        }
    }

    uniform_int! {
        u8 => u8, u32, 32;
        i8 => u8, u32, 32;
        u16 => u16, u32, 32;
        i16 => u16, u32, 32;
        u32 => u32, u32, 32;
        i32 => u32, u32, 32;
        u64 => u64, u64, 64;
        i64 => u64, u64, 64;
        usize => usize, u64, 64;
        isize => usize, u64, 64;
    }

    impl SampleUniform for f64 {
        fn sample_range<R: RngCore + ?Sized>(
            rng: &mut R,
            low: Self,
            high: Self,
            inclusive: bool,
        ) -> Self {
            assert!(
                low < high || (inclusive && low <= high),
                "gen_range: empty range"
            );
            let unit: f64 = Standard::sample(rng);
            low + unit * (high - low)
        }
    }

    impl SampleUniform for f32 {
        fn sample_range<R: RngCore + ?Sized>(
            rng: &mut R,
            low: Self,
            high: Self,
            inclusive: bool,
        ) -> Self {
            assert!(
                low < high || (inclusive && low <= high),
                "gen_range: empty range"
            );
            let unit: f32 = Standard::sample(rng);
            low + unit * (high - low)
        }
    }
}

pub use sample::{SampleUniform, Standard};

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

/// High-level convenience methods, blanket-implemented for every
/// generator.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw via 64-bit fixed point (rand 0.8's method).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not a probability");
        if p >= 1.0 {
            return true;
        }
        let p_int = (p * (1u128 << 64) as f64) as u64;
        self.next_u64() < p_int
    }

    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-20..20);
            assert!((-20..20).contains(&v));
            let u = rng.gen_range(0..=5u32);
            assert!(u <= 5);
            let f = rng.gen_range(0.25f64..4.0);
            assert!((0.25..4.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_domain() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_600..3_400).contains(&hits), "got {hits}");
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
