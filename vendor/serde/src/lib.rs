//! Offline stand-in for `serde`. Instead of serde's visitor-based
//! zero-copy architecture, this models serialization as conversion to
//! and from a JSON-shaped [`Value`] tree — exactly enough for the
//! workspace's needs (JSON artifact round-trips and derived impls),
//! with the same `#[derive(Serialize, Deserialize)]` spelling via the
//! sibling `serde_derive` proc-macro crate.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// A JSON-shaped value tree: the serialization data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered key/value pairs (field order = declaration
    /// order, as serde_json preserves for structs).
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// A deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    pub message: String,
}

impl DeError {
    pub fn new(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.message)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Conversion out of the [`Value`] data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Extracts and deserializes one field of an object (derive support).
pub fn field<T: Deserialize>(fields: &[(String, Value)], name: &str) -> Result<T, DeError> {
    match fields.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v),
        None => Err(DeError::new(format!("missing field `{name}`"))),
    }
}

/// Like [`field`], but a missing field yields `T::default()` — the
/// behaviour of `#[serde(default)]` (derive support).
pub fn field_or_default<T: Deserialize + Default>(
    fields: &[(String, Value)],
    name: &str,
) -> Result<T, DeError> {
    match fields.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v),
        None => Ok(T::default()),
    }
}

// ---------------------------------------------------------------------
// Primitive impls.

macro_rules! ser_de_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(n) => Ok(*n as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(DeError::new(format!(
                        "expected integer, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}
ser_de_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_de_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(n) => Ok(*n as $t),
                    Value::Int(n) if *n >= 0 => Ok(*n as $t),
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => Ok(*f as $t),
                    other => Err(DeError::new(format!(
                        "expected unsigned integer, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}
ser_de_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_de_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(n) => Ok(*n as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    other => Err(DeError::new(format!(
                        "expected number, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}
ser_de_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Box::new(T::from_value(v)?))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::new("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v.as_array() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(DeError::new("expected 2-element array")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v.as_array() {
            Some([a, b, c]) => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            _ => Err(DeError::new("expected 3-element array")),
        }
    }
}

/// Types usable as JSON object keys (maps serialize to objects, with
/// integer keys rendered as strings, as serde_json does).
pub trait MapKey: Sized {
    fn to_key(&self) -> String;
    fn from_key(key: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }

    fn from_key(key: &str) -> Result<Self, DeError> {
        Ok(key.to_string())
    }
}

macro_rules! int_map_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }

            fn from_key(key: &str) -> Result<Self, DeError> {
                key.parse().map_err(|_| {
                    DeError::new(format!("invalid integer map key `{key}`"))
                })
            }
        }
    )*};
}
int_map_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::new("expected object"))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<K: MapKey, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output, unlike iteration order.
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<K: MapKey + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::new("expected object"))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::new("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::new("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_round_trip() {
        let v: Option<u32> = Some(3);
        assert_eq!(Option::<u32>::from_value(&v.to_value()).unwrap(), Some(3));
        let n: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&n.to_value()).unwrap(), None);
    }

    #[test]
    fn map_keys_become_strings() {
        let mut m = BTreeMap::new();
        m.insert(7u32, "x".to_string());
        let v = m.to_value();
        assert_eq!(v.get("7").and_then(Value::as_str), Some("x"));
        let back = BTreeMap::<u32, String>::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn tuple_round_trip() {
        let t = ("a".to_string(), 0.5f64);
        let back = <(String, f64)>::from_value(&t.to_value()).unwrap();
        assert_eq!(back, t);
    }
}
