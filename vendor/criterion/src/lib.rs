//! Offline stand-in for `criterion`: a wall-clock micro-benchmark
//! harness covering the API this workspace uses — `Criterion`,
//! `benchmark_group`/`sample_size`/`bench_function`/`bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Under `cargo test` (cargo passes `--test` to `harness = false`
//! bench targets) each benchmark body runs exactly once as a smoke
//! test. Under `cargo bench` every benchmark is warmed up once and
//! then sampled `sample_size` times; mean/min/max wall-clock are
//! printed per benchmark.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value passthrough.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Run mode, derived from the CLI args cargo hands bench binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// One iteration per benchmark (`cargo test`).
    Smoke,
    /// Full sampling (`cargo bench`).
    Measure,
}

pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mode = if args.iter().any(|a| a == "--test") {
            Mode::Smoke
        } else {
            Mode::Measure
        };
        let filter = args
            .iter()
            .find(|a| !a.starts_with('-'))
            .cloned()
            .filter(|s| !s.is_empty());
        Criterion {
            mode,
            filter,
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        self.run_one(&id.into().label, sample_size, f);
        self
    }

    pub fn final_summary(&mut self) {}

    fn run_one<F>(&mut self, label: &str, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !label.contains(filter.as_str()) {
                return;
            }
        }
        let samples = match self.mode {
            Mode::Smoke => 1,
            Mode::Measure => sample_size.max(1),
        };
        let mut bencher = Bencher {
            samples,
            warmup: self.mode == Mode::Measure,
            times: Vec::new(),
        };
        f(&mut bencher);
        if self.mode == Mode::Measure {
            report(label, &bencher.times);
        } else {
            println!("{label}: ok (smoke)");
        }
    }
}

fn report(label: &str, times: &[Duration]) {
    if times.is_empty() {
        println!("{label}: no samples recorded");
        return;
    }
    let total: Duration = times.iter().sum();
    let mean = total / times.len() as u32;
    let min = times.iter().min().copied().unwrap_or_default();
    let max = times.iter().max().copied().unwrap_or_default();
    println!(
        "{label}: mean {:?} min {:?} max {:?} ({} samples)",
        mean,
        min,
        max,
        times.len()
    );
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        let sample_size = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        self.criterion.run_one(&label, sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// A benchmark identifier; renders as `function/parameter`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

pub struct Bencher {
    samples: usize,
    warmup: bool,
    times: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` once per sample; the return value is passed
    /// through `black_box` so the work is not optimized away.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        if self.warmup {
            black_box(routine());
        }
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.times.push(start.elapsed());
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher {
            samples: 3,
            warmup: false,
            times: Vec::new(),
        };
        let mut count = 0u64;
        b.iter(|| {
            count += 1;
            count
        });
        assert_eq!(count, 3);
        assert_eq!(b.times.len(), 3);
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("gcc", "O2").label, "gcc/O2");
        assert_eq!(BenchmarkId::from_parameter(42).label, "42");
    }
}
