//! Offline stand-in for `serde_json`: renders the vendored serde
//! [`Value`] model to JSON text and parses it back. Covers the
//! surface this workspace uses: `to_string`, `to_string_pretty`,
//! `from_str`, `to_value`, and the [`Error`] type.

use serde::{DeError, Deserialize, Serialize, Value};

/// A serialization or parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.message)
    }
}

/// Serializes any `Serialize` value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes to human-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Converts any `Serialize` value into the [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Parses JSON text into any `Deserialize` type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let v = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&v)?)
}

// ---------------------------------------------------------------------
// Writing.

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Rust's shortest round-trip formatting; ensure a
                // decimal point so the value re-parses as a float.
                let s = f.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // JSON has no Inf/NaN; serde_json writes null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            if !fields.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parsing.

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::new(format!("bad array at offset {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    fields.push((key, self.value()?));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(Error::new(format!("bad object at offset {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::new(format!(
                "unexpected input at offset {}",
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let c = self
                .peek()
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                c => {
                    // Re-decode multi-byte UTF-8 from the raw input.
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        let start = self.pos - 1;
                        let width = utf8_width(c);
                        let slice = self
                            .bytes
                            .get(start..start + width)
                            .ok_or_else(|| Error::new("truncated UTF-8"))?;
                        let s =
                            std::str::from_utf8(slice).map_err(|_| Error::new("invalid UTF-8"))?;
                        out.push_str(s);
                        self.pos = start + width;
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn round_trip_nested() {
        let mut m: BTreeMap<u32, Vec<String>> = BTreeMap::new();
        m.insert(3, vec!["a\"b".into(), "c\\d".into()]);
        m.insert(7, vec![]);
        let json = to_string(&m).unwrap();
        let back: BTreeMap<u32, Vec<String>> = from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn floats_keep_precision() {
        let v = vec![0.1f64, 1.0, -2.5e-3];
        let json = to_string(&v).unwrap();
        let back: Vec<f64> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_is_parseable() {
        let v = vec![(String::from("x"), 1.5f64)];
        let json = to_string_pretty(&v).unwrap();
        assert!(json.contains('\n'));
        let back: Vec<(String, f64)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn unicode_round_trip() {
        let s = String::from("héllo ☃ \u{1}");
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<Vec<u32>>("[1,]").is_err());
        assert!(from_str::<u32>("12 34").is_err());
    }
}
