//! Offline stand-in for `proptest`. Provides the workspace's used
//! surface: the [`proptest!`] macro, integer/float range strategies,
//! tuple strategies, `collection::{vec, btree_set}`, `bool::ANY`,
//! typed (`Arbitrary`) parameters, `prop_assert!`/`prop_assert_eq!`,
//! and **regression-file replay**: before generating novel cases, any
//! sibling `*.proptest-regressions` file is read and every `name =
//! value` assignment in its `# shrinks to ...` comments is re-run
//! pinned. No shrinking is performed — failures report the values via
//! the assertion message (pinned regressions are already shrunk).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; a leaner default keeps the
        // whole-compiler differential tests affordable in CI.
        ProptestConfig { cases: 48 }
    }
}

/// The per-case value source handed to strategies: a deterministic
/// RNG plus the pinned assignments of a regression entry being
/// replayed.
pub struct TestRunner {
    rng: SmallRng,
    pinned: HashMap<String, i128>,
}

impl TestRunner {
    fn new(seed: u64, pinned: HashMap<String, i128>) -> Self {
        TestRunner {
            rng: SmallRng::seed_from_u64(seed),
            pinned,
        }
    }

    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    /// Binds one named parameter: a pinned regression value if the
    /// replayed entry names it, otherwise a fresh draw.
    pub fn bind<S: Strategy>(&mut self, name: &str, strategy: &S) -> S::Value {
        if let Some(&v) = self.pinned.get(name) {
            if let Some(value) = strategy.from_pinned(v) {
                return value;
            }
        }
        strategy.generate(self)
    }
}

/// A value generator.
pub trait Strategy {
    type Value;

    fn generate(&self, runner: &mut TestRunner) -> Self::Value;

    /// Rebuilds a value from a pinned integer assignment in a
    /// regression file, when the value domain allows it.
    #[allow(clippy::wrong_self_convention)]
    fn from_pinned(&self, _v: i128) -> Option<Self::Value> {
        None
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }

            fn from_pinned(&self, v: i128) -> Option<$t> {
                let v = <$t>::try_from(v).ok()?;
                self.contains(&v).then_some(v)
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }

            fn from_pinned(&self, v: i128) -> Option<$t> {
                let v = <$t>::try_from(v).ok()?;
                self.contains(&v).then_some(v)
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),* $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                ($(self.$idx.generate(runner),)+)
            }
        }
    )*};
}
tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
);

/// `proptest::bool::ANY`.
pub mod bool {
    use super::{Strategy, TestRunner};
    use rand::Rng;

    pub struct Any;

    /// A uniformly random boolean.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = core::primitive::bool;

        fn generate(&self, runner: &mut TestRunner) -> core::primitive::bool {
            runner.rng().gen_range(0..2u32) == 1
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRunner};
    use rand::Rng;
    use std::collections::BTreeSet;

    /// Sizes accepted by the collection combinators.
    pub trait SizeRange {
        fn pick(&self, runner: &mut TestRunner) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _runner: &mut TestRunner) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, runner: &mut TestRunner) -> usize {
            runner.rng().gen_range(self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, runner: &mut TestRunner) -> usize {
            runner.rng().gen_range(self.clone())
        }
    }

    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn generate(&self, runner: &mut TestRunner) -> Self::Value {
            let n = self.size.pick(runner);
            (0..n).map(|_| self.element.generate(runner)).collect()
        }
    }

    pub struct BTreeSetStrategy<S, R> {
        element: S,
        size: R,
    }

    pub fn btree_set<S, R>(element: S, size: R) -> BTreeSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Ord,
        R: SizeRange,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S, R> Strategy for BTreeSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Ord,
        R: SizeRange,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, runner: &mut TestRunner) -> Self::Value {
            // Proptest treats the size as a target, retrying on
            // duplicate elements a bounded number of times.
            let n = self.size.pick(runner);
            let mut set = BTreeSet::new();
            let mut attempts = 0;
            while set.len() < n && attempts < n * 16 + 16 {
                set.insert(self.element.generate(runner));
                attempts += 1;
            }
            set
        }
    }
}

/// Types usable as bare `name: Type` proptest parameters.
pub trait Arbitrary: Sized {
    fn arbitrary(runner: &mut TestRunner) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(runner: &mut TestRunner) -> Self {
                runner.rng().gen()
            }
        }
    )*};
}
arbitrary_int!(u8, i8, u16, i16, u32, i32, u64, i64, usize, isize);

impl Arbitrary for core::primitive::bool {
    fn arbitrary(runner: &mut TestRunner) -> Self {
        runner.rng().gen()
    }
}

/// One pinned regression entry: the assignments parsed from the
/// `# shrinks to name = value, ...` comment.
#[derive(Debug, Clone)]
pub struct PinnedCase {
    pub assignments: HashMap<String, i128>,
    pub raw_line: String,
}

/// Reads the sibling `*.proptest-regressions` file of a test source
/// file, tolerating the cwd differences between workspace-root and
/// package-relative invocation.
pub fn read_regressions(manifest_dir: &str, source_file: &str) -> Vec<PinnedCase> {
    let mut candidates: Vec<PathBuf> = Vec::new();
    let src = Path::new(source_file);
    if src.is_absolute() {
        candidates.push(src.to_path_buf());
    } else {
        candidates.push(Path::new(manifest_dir).join(src));
        candidates.push(src.to_path_buf());
        // file!() paths are workspace-relative when building a
        // workspace; strip leading components to find the
        // package-relative remainder.
        let mut comps = src.components();
        while comps.next().is_some() {
            let rest = comps.as_path();
            if rest.as_os_str().is_empty() {
                break;
            }
            candidates.push(Path::new(manifest_dir).join(rest));
        }
    }
    for candidate in candidates {
        let reg = candidate.with_extension("proptest-regressions");
        if let Ok(text) = std::fs::read_to_string(&reg) {
            return parse_regressions(&text);
        }
    }
    Vec::new()
}

fn parse_regressions(text: &str) -> Vec<PinnedCase> {
    let mut cases = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let comment = match line.split_once('#') {
            Some((_, c)) => c,
            None => continue,
        };
        let mut assignments = HashMap::new();
        // "shrinks to seed = 15, byte = 3" → {seed: 15, byte: 3}.
        let payload = comment
            .trim()
            .strip_prefix("shrinks to")
            .unwrap_or(comment)
            .trim();
        for part in payload.split(',') {
            if let Some((name, value)) = part.split_once('=') {
                if let Ok(v) = value.trim().parse::<i128>() {
                    assignments.insert(name.trim().to_string(), v);
                }
            }
        }
        if !assignments.is_empty() {
            cases.push(PinnedCase {
                assignments,
                raw_line: line.to_string(),
            });
        }
    }
    cases
}

/// Drives one property test: pinned regression entries first, then
/// `config.cases` fresh deterministic cases.
pub fn run_cases(
    config: &ProptestConfig,
    manifest_dir: &str,
    source_file: &str,
    test_name: &str,
    mut body: impl FnMut(&mut TestRunner),
) {
    let name_seed = fnv1a(test_name.as_bytes());
    for pinned in read_regressions(manifest_dir, source_file) {
        let mut runner = TestRunner::new(name_seed, pinned.assignments.clone());
        let outcome = catch_unwind(AssertUnwindSafe(|| body(&mut runner)));
        if let Err(payload) = outcome {
            eprintln!(
                "proptest: pinned regression failed for `{test_name}`: {}",
                pinned.raw_line
            );
            resume_unwind(payload);
        }
    }
    for case in 0..config.cases {
        let mut runner = TestRunner::new(name_seed.wrapping_add(case as u64), HashMap::new());
        let outcome = catch_unwind(AssertUnwindSafe(|| body(&mut runner)));
        if let Err(payload) = outcome {
            eprintln!("proptest: case {case} failed for `{test_name}`");
            resume_unwind(payload);
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

/// Binds the parameter list of a proptest function. Each parameter is
/// either `name in strategy` or `name: Type`.
#[macro_export]
macro_rules! __proptest_bind {
    ($runner:ident $(,)?) => {};
    ($runner:ident, $name:ident in $strat:expr) => {
        let $name = $runner.bind(stringify!($name), &$strat);
    };
    ($runner:ident, $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $runner.bind(stringify!($name), &$strat);
        $crate::__proptest_bind!($runner, $($rest)*);
    };
    ($runner:ident, $name:ident : $ty:ty) => {
        let $name: $ty = $crate::Arbitrary::arbitrary($runner);
    };
    ($runner:ident, $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name: $ty = $crate::Arbitrary::arbitrary($runner);
        $crate::__proptest_bind!($runner, $($rest)*);
    };
}

/// Expands each property function into a `#[test]`.
#[macro_export]
macro_rules! __proptest_fns {
    (config = $cfg:expr;) => {};
    // Callers annotate each property fn with `#[test]` themselves
    // (matching real proptest usage in this workspace), so the metas
    // are passed through unchanged rather than adding another one.
    (config = $cfg:expr; $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(
                &__config,
                env!("CARGO_MANIFEST_DIR"),
                file!(),
                stringify!($name),
                |__runner: &mut $crate::TestRunner| {
                    $crate::__proptest_bind!(__runner, $($params)*);
                    $body
                },
            );
        }
        $crate::__proptest_fns!(config = $cfg; $($rest)*);
    };
}

/// The `proptest!` entry macro.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(config = $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(config = $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Assertion macros: identical to std asserts (no shrinking here).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Arbitrary, ProptestConfig, Strategy, TestRunner};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut runner = TestRunner::new(1, HashMap::new());
        for _ in 0..500 {
            let v = (3u32..9).generate(&mut runner);
            assert!((3..9).contains(&v));
        }
    }

    #[test]
    fn pinned_overrides_generation() {
        let mut pinned = HashMap::new();
        pinned.insert("seed".to_string(), 15i128);
        let mut runner = TestRunner::new(1, pinned);
        assert_eq!(runner.bind("seed", &(0u64..500)), 15);
        let free = runner.bind("other", &(0u64..500));
        assert!(free < 500);
    }

    #[test]
    fn regression_comments_parse() {
        let cases = parse_regressions(
            "# header comment\n\
             cc d50364f76 # shrinks to seed = 15\n\
             cc 0dfb71194 # shrinks to seed = 118, byte = 3\n",
        );
        assert_eq!(cases.len(), 2);
        assert_eq!(cases[0].assignments["seed"], 15);
        assert_eq!(cases[1].assignments["byte"], 3);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_smoke(a in 0u8..10, b: u32) {
            prop_assert!(a < 10);
            let _ = b;
        }
    }

    proptest! {
        #[test]
        fn tuple_and_collections(parts in crate::collection::vec((0u32..10, crate::bool::ANY), 0..6)) {
            prop_assert!(parts.len() < 6);
            for (n, _flag) in parts {
                prop_assert!(n < 10);
            }
        }
    }
}
