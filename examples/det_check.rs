//! Compilation-determinism check: compiling the same source with the
//! same options must be bit-identical across repeated calls (the
//! content-addressed trace cache and the serial/parallel equivalence
//! of variant evaluation both rest on this).
//!
//! Usage: `cargo run --release --example det_check`

use dt_passes::{
    compile_source, pipeline_pass_names, CompileOptions, OptLevel, PassGate, Personality,
};

fn main() {
    let mut srcs: Vec<(String, String)> = dt_testsuite::real_world_suite()
        .iter()
        .map(|p| (p.name.to_string(), p.source.to_string()))
        .collect();
    let shape = dt_testsuite::synth::SynthConfig {
        functions: 6,
        vars_per_function: 14,
        stmts_per_function: 24,
        max_expr_depth: 6,
    };
    for seed in [15u64, 118, 126, 321] {
        srcs.push((
            format!("synth{seed}"),
            dt_testsuite::synth::generate(seed, &shape),
        ));
    }
    let mut failures = 0usize;
    for (name, src) in &srcs {
        for personality in [Personality::Gcc, Personality::Clang] {
            for &level in OptLevel::levels_for(personality) {
                // Full pipeline, plus each single-pass-disabled variant
                // (the exact builds variant evaluation performs).
                let mut gates: Vec<(String, PassGate)> =
                    vec![("<all>".into(), PassGate::allow_all())];
                for pass in pipeline_pass_names(personality, level) {
                    gates.push((pass.to_string(), PassGate::disabling([pass])));
                }
                for (gname, gate) in gates {
                    let mut opts = CompileOptions::new(personality, level);
                    opts.gate = gate;
                    let h0 = compile_source(src, &opts).unwrap().content_hash();
                    for _ in 0..3 {
                        let h = compile_source(src, &opts).unwrap().content_hash();
                        if h != h0 {
                            failures += 1;
                            println!(
                                "{name} {personality:?} {level:?} gate {gname}: NONDETERMINISTIC"
                            );
                            break;
                        }
                    }
                }
            }
        }
        eprintln!("{name}: checked");
    }
    println!("determinism check complete: {failures} unstable configurations");
    if failures > 0 {
        std::process::exit(1);
    }
}
