//! Measurement-method comparison: the four metrics of Section II
//! (static, static-dbg, dynamic, hybrid) on one real program, showing
//! the static overestimation and dynamic underestimation the hybrid
//! method corrects.
//!
//! ```sh
//! cargo run --release --example measure_quality
//! ```

use debugtuner::{DebugTuner, ProgramInput};
use dt_passes::{OptLevel, Personality};

fn main() {
    let suite = dt_testsuite::program("libexif").expect("suite program");
    println!("fuzzing inputs for {}...", suite.name);
    let program = ProgramInput::from_suite(&suite, 1000);
    println!("minimized input set: {} inputs", program.inputs.len());
    let tuner = DebugTuner::default();

    println!(
        "\n{:<9} {:<5} | {:>22} | {:>22} | {:>8}",
        "compiler", "level", "availability (4 methods)", "line coverage", "product"
    );
    for personality in [Personality::Gcc, Personality::Clang] {
        for &level in OptLevel::levels_for(personality) {
            let eval = tuner.evaluate(&program, personality, level);
            let m = &eval.methods;
            println!(
                "{:<9} {:<5} | st {:.3} sd {:.3} dy {:.3} hy {:.3} | st {:.3} sd {:.3} dy {:.3} | hy {:.4}",
                personality.name(),
                level.name(),
                m.static_m.availability,
                m.static_dbg.availability,
                m.dynamic.availability,
                m.hybrid.availability,
                m.static_m.line_coverage,
                m.static_dbg.line_coverage,
                m.dynamic.line_coverage,
                m.hybrid.product,
            );
        }
    }
    println!(
        "\nreading the table: `st` (static) counts debug info that never \
         materializes (overestimate); `dy` (dynamic) punishes the optimized \
         build for O0's whole-function variable ranges (underestimate); \
         `hy` (hybrid) corrects both — it should sit between them."
    );
    println!("\n{}", tuner.stats().summary());
}
