//! Trace-engine equivalence check: every debug session run through the
//! fast path (precomputed `BreakPlan`, in-VM breakpoint bitmap via
//! `Vm::run_until_break`, early-exit inputs) must produce a
//! field-for-field identical `DebugTrace` to the slow-step reference
//! engine — across the whole suite plus synthetic programs, both
//! personalities, every optimization level, and both plain and
//! ground-truth sessions.
//!
//! Usage: `cargo run --release --example trace_equiv_check`

use dt_debugger::{trace, trace_with_plan_stats, BreakPlan, SessionConfig, TraceStats};
use dt_passes::{compile_source, CompileOptions, OptLevel, Personality};

fn main() {
    struct Case {
        name: String,
        source: String,
        harness: String,
        inputs: Vec<Vec<u8>>,
    }
    let mut cases: Vec<Case> = dt_testsuite::real_world_suite()
        .iter()
        .map(|p| Case {
            name: p.name.to_string(),
            source: p.source.to_string(),
            harness: p.harnesses[0].to_string(),
            inputs: p.seeds.iter().map(|s| s.to_vec()).collect(),
        })
        .collect();
    let shape = dt_testsuite::synth::SynthConfig::default();
    for seed in [3u64, 41, 118, 126, 204] {
        cases.push(Case {
            name: format!("synth{seed}"),
            source: dt_testsuite::synth::generate(seed, &shape),
            harness: "fuzz_main".into(),
            inputs: vec![vec![seed as u8, 9], vec![], vec![seed as u8 ^ 0x5a; 6]],
        });
    }

    let mut failures = 0usize;
    let mut sessions = 0usize;
    let mut totals = TraceStats::default();
    for case in &cases {
        for personality in [Personality::Gcc, Personality::Clang] {
            for &level in OptLevel::levels_for(personality) {
                let obj =
                    compile_source(&case.source, &CompileOptions::new(personality, level)).unwrap();
                let plan = BreakPlan::new(&obj);
                for ground_truth in [false, true] {
                    let cfg = SessionConfig {
                        max_steps_per_input: 2_000_000,
                        entry_args: vec![],
                        ground_truth,
                    };
                    let slow = trace(&obj, &case.harness, &case.inputs, &cfg).unwrap();
                    let (fast, stats) =
                        trace_with_plan_stats(&obj, &case.harness, &case.inputs, &cfg, &plan)
                            .unwrap();
                    sessions += 1;
                    totals.merge(&stats);
                    if slow != fast {
                        failures += 1;
                        println!(
                            "{} {personality:?} {level:?} gt={ground_truth}: \
                             fast path DIVERGES from slow-step trace",
                            case.name
                        );
                    }
                }
            }
        }
        eprintln!("{}: checked", case.name);
    }
    println!(
        "trace equivalence complete: {sessions} session pair(s), \
         {} fast step(s), {} break stop(s), {} abandoned input(s), \
         {failures} divergent trace(s)",
        totals.fast_steps, totals.break_stops, totals.inputs_abandoned
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
