//! Checker smoke test: the differential debug-info oracle must (a)
//! report a clean bill for O0-vs-O0, (b) find stale/wrong-value
//! defects on the pinned gcc CSE regression, and (c) classify
//! identically across repeated runs. CI runs this to catch
//! correctness-oracle regressions end to end.
//!
//! Usage: `cargo run --release --example checker_smoke`

use dt_checker::check_compiled;
use dt_passes::{CompileOptions, OptLevel, Personality};

fn main() {
    let mut failures = 0usize;

    // O0 against itself shows no value lies for any suite program.
    // (Phantom variables are allowed here: O0 loclists cover the whole
    // function, so a variable is visible before its declaration line
    // holding an uninitialized slot — scope over-reporting, not a
    // value divergence.)
    for p in dt_testsuite::real_world_suite() {
        let options = CompileOptions::new(Personality::Gcc, OptLevel::O0);
        let inputs: Vec<Vec<u8>> = p.seeds.iter().map(|s| s.to_vec()).collect();
        let r = check_compiled(p.source, p.harnesses[0], &inputs, &[], &options, 2_000_000)
            .unwrap_or_else(|e| panic!("{}: {e}", p.name));
        let s = r.summary;
        if s.wrong + s.stale + s.misplaced != 0 {
            failures += 1;
            println!("{}: O0-vs-O0 reports value lies: {s:?}", p.name);
        }
    }

    // The pinned gcc O2 seed keeps exposing stale + wrong values, and
    // two independent checks agree defect-for-defect.
    let cfg = dt_testsuite::synth::SynthConfig::default();
    let src = dt_testsuite::synth::generate(52, &cfg);
    let options = CompileOptions::new(Personality::Gcc, OptLevel::O2);
    let run = || {
        check_compiled(&src, "fuzz_main", &[vec![52, 9]], &[], &options, 2_000_000)
            .expect("pinned seed compiles")
    };
    let a = run();
    let b = run();
    if a.summary.stale == 0 || a.summary.wrong == 0 {
        failures += 1;
        println!("pinned seed lost its stale/wrong defects: {:?}", a.summary);
    }
    if a.summary != b.summary || a.defects != b.defects {
        failures += 1;
        println!(
            "checker nondeterministic: {:?} vs {:?}",
            a.summary, b.summary
        );
    }

    println!("checker smoke complete: {failures} failures");
    if failures > 0 {
        std::process::exit(1);
    }
}
