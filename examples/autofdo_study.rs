//! AutoFDO case study: show that richer debug information in the
//! profiling binary produces a better profile and a faster final
//! binary (the paper's Section V-C in one program).
//!
//! ```sh
//! cargo run --release --example autofdo_study
//! ```

use dt_autofdo::{collect_profile, run_autofdo, AutoFdoConfig};
use dt_passes::{compile, CompileOptions, OptLevel, PassGate, Personality};
use dt_testsuite::spec::{self, Workload};

fn main() {
    let b = spec::benchmark("557.xz").expect("benchmark exists");
    let module = dt_frontend::lower_source(b.source).unwrap();
    let iters = b.iterations(Workload::Test);

    // Look at how the profiling level changes profile quality.
    println!("profile quality by profiling level (sampled {}):", b.name);
    for level in [OptLevel::O1, OptLevel::O2, OptLevel::O3] {
        let obj = compile(&module, &CompileOptions::new(Personality::Clang, level));
        let profile = collect_profile(&obj, b.entry, &[iters], &[], 500_000_000).unwrap();
        println!(
            "  {level}: {:>6} samples, {:.1}% mapped to source lines, steppable lines {}",
            profile.total_samples,
            100.0 * profile.mapped_fraction(),
            obj.debug.steppable_lines().len()
        );
    }

    // Full AutoFDO: baseline O2 profiling vs debug-friendlier O2-dy.
    let base = AutoFdoConfig {
        personality: Personality::Clang,
        profiling_level: OptLevel::O2,
        profiling_gate: PassGate::allow_all(),
        final_level: OptLevel::O2,
        max_steps: 2_000_000_000,
    };
    let r_base = run_autofdo(&module, b.entry, &[iters], &[], &base).unwrap();
    println!(
        "\nAutoFDO with O2 profiles:    {:>10} cycles (plain O2: {:>10}, {:+.2}%)",
        r_base.autofdo_cycles,
        r_base.plain_cycles,
        100.0 * (r_base.plain_cycles as f64 / r_base.autofdo_cycles as f64 - 1.0)
    );

    let tuned = AutoFdoConfig {
        profiling_gate: PassGate::disabling([
            "JumpThreading",
            "Machine code sinking",
            "SimplifyCFG",
        ]),
        ..base
    };
    let r_tuned = run_autofdo(&module, b.entry, &[iters], &[], &tuned).unwrap();
    println!(
        "AutoFDO with O2-d3 profiles: {:>10} cycles ({:+.2}% vs O2-profile AutoFDO)",
        r_tuned.autofdo_cycles,
        100.0 * (r_base.autofdo_cycles as f64 / r_tuned.autofdo_cycles as f64 - 1.0)
    );
    println!(
        "profiling binary steppable lines: {} -> {} ({:+})",
        r_base.profiling_steppable_lines,
        r_tuned.profiling_steppable_lines,
        r_tuned.profiling_steppable_lines as i64 - r_base.profiling_steppable_lines as i64
    );
    println!(
        "mapped sample fraction: {:.1}% -> {:.1}%",
        100.0 * r_base.mapped_fraction,
        100.0 * r_tuned.mapped_fraction
    );
}
