//! Staged-session equivalence check: every variant built by resuming a
//! checkpointed [`CompileSession`] from a mid-pipeline snapshot must be
//! bit-identical to compiling the same gated configuration from
//! scratch, across the whole suite, both personalities, every level,
//! and every single-pass gate — plus a handful of multi-pass gates and
//! both snapshot-retention modes. Also verifies sessions are
//! deterministic: two sessions over the same module agree on every
//! stage fingerprint.
//!
//! Usage: `cargo run --release --example session_check`

use dt_passes::{
    compile_source, pipeline_pass_names, CompileOptions, CompileSession, OptLevel, PassGate,
    Personality, SnapshotRetention,
};

fn main() {
    let mut srcs: Vec<(String, String)> = dt_testsuite::real_world_suite()
        .iter()
        .map(|p| (p.name.to_string(), p.source.to_string()))
        .collect();
    let shape = dt_testsuite::synth::SynthConfig {
        functions: 6,
        vars_per_function: 14,
        stmts_per_function: 24,
        max_expr_depth: 6,
    };
    for seed in [7u64, 77, 204] {
        srcs.push((
            format!("synth{seed}"),
            dt_testsuite::synth::generate(seed, &shape),
        ));
    }

    let mut failures = 0usize;
    let mut variants = 0usize;
    let mut skipped = 0u64;
    for (name, src) in &srcs {
        for personality in [Personality::Gcc, Personality::Clang] {
            for &level in OptLevel::levels_for(personality) {
                let module = dt_frontend::lower_source(src).unwrap();
                let session = CompileSession::new(module.clone(), personality, level, None);
                let minimal = CompileSession::with_retention(
                    module,
                    personality,
                    level,
                    None,
                    SnapshotRetention::Minimal,
                );
                if session.stage_fingerprints() != minimal.stage_fingerprints() {
                    failures += 1;
                    println!("{name} {personality:?} {level:?}: NONDETERMINISTIC session stages");
                }

                let names = pipeline_pass_names(personality, level);
                let mut gates: Vec<(String, PassGate)> =
                    vec![("<all>".into(), PassGate::allow_all())];
                for &pass in &names {
                    gates.push((pass.to_string(), PassGate::disabling([pass])));
                }
                // A few multi-pass gates (first+last, and a prefix).
                if names.len() >= 2 {
                    gates.push((
                        "<first+last>".into(),
                        PassGate::disabling([names[0], names[names.len() - 1]]),
                    ));
                    let k = names.len().min(4);
                    gates.push((
                        format!("<first {k}>"),
                        PassGate::disabling(names[..k].iter().copied()),
                    ));
                }
                for (gname, gate) in gates {
                    let mut opts = CompileOptions::new(personality, level);
                    opts.gate = gate.clone();
                    let scratch = compile_source(src, &opts).unwrap().content_hash();
                    variants += 1;
                    for (mode, s) in [("checkpoints", &session), ("minimal", &minimal)] {
                        let resumed = s.compile_variant(&gate).content_hash();
                        if resumed != scratch {
                            failures += 1;
                            println!(
                                "{name} {personality:?} {level:?} gate {gname} ({mode}): \
                                 session DIVERGES from scratch build"
                            );
                        }
                    }
                }
                skipped += session.stats().prefix_passes_skipped;
            }
        }
        eprintln!("{name}: checked");
    }
    println!(
        "session check complete: {variants} gate(s) x 2 retention modes, \
         {skipped} prefix pass(es) skipped, {failures} divergent builds"
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
