//! Exhaustive differential sweep of the synthetic-program space: every
//! generator seed is compiled at `O0` and at the highest levels of both
//! personalities, run on a battery of inputs, and any cross-level
//! disagreement (behavioral miscompilation) is reported with enough
//! context to reproduce it.
//!
//! Usage: `cargo run --release --example seed_sweep [max_seed]`

use dt_passes::{compile_source, CompileOptions, OptLevel, Personality};

fn run(obj: &dt_machine::Object, input: &[u8]) -> Result<(i64, Vec<i64>), String> {
    let r = dt_vm::Vm::run_to_completion(
        obj,
        "fuzz_main",
        &[],
        input,
        dt_vm::VmConfig {
            max_steps: 5_000_000,
            ..Default::default()
        },
    )
    .map_err(|e| format!("{e:?}"))?;
    Ok((r.ret, r.output))
}

fn main() {
    let max_seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(500);
    let cfg = dt_testsuite::synth::SynthConfig::default();
    let bytes: &[u8] = &[0, 1, 7, 11, 42, 90, 128, 200, 254, 255];
    let mut failures = 0usize;
    for seed in 0..max_seed {
        let src = dt_testsuite::synth::generate(seed, &cfg);
        let o0 = match compile_source(&src, &CompileOptions::new(Personality::Gcc, OptLevel::O0)) {
            Ok(o) => o,
            Err(e) => {
                failures += 1;
                println!("seed {seed}: O0 COMPILE FAILED: {e:?}");
                continue;
            }
        };
        for (personality, level) in [
            (Personality::Gcc, OptLevel::Og),
            (Personality::Gcc, OptLevel::O1),
            (Personality::Gcc, OptLevel::O2),
            (Personality::Gcc, OptLevel::O3),
            (Personality::Clang, OptLevel::Og),
            (Personality::Clang, OptLevel::O1),
            (Personality::Clang, OptLevel::O2),
            (Personality::Clang, OptLevel::O3),
        ] {
            let obj = match compile_source(&src, &CompileOptions::new(personality, level)) {
                Ok(o) => o,
                Err(e) => {
                    failures += 1;
                    println!("seed {seed} {personality:?} {level:?}: COMPILE FAILED: {e:?}");
                    continue;
                }
            };
            for &b in bytes {
                let input = [b, b ^ 0x5a];
                let expected = run(&o0, &input);
                let got = run(&obj, &input);
                if got != expected {
                    failures += 1;
                    println!(
                        "seed {seed} {personality:?} {level:?} byte {b}: got {got:?} expected {expected:?}"
                    );
                    break;
                }
            }
        }
        if seed % 100 == 99 {
            eprintln!("... swept {} seeds, {failures} failures so far", seed + 1);
        }
    }
    println!("sweep complete: {failures} disagreements across {max_seed} seeds");
    if failures > 0 {
        std::process::exit(1);
    }
}
