//! Differential stress sweep with non-default generator shapes: more
//! functions, deeper expressions, and longer bodies than the default
//! `SynthConfig`, to reach pass interactions the default sweep misses.
//!
//! Usage: `cargo run --release --example seed_stress [max_seed]`

use dt_passes::{compile_source, CompileOptions, OptLevel, Personality};
use dt_testsuite::synth::SynthConfig;

fn run(obj: &dt_machine::Object, input: &[u8]) -> Result<(i64, Vec<i64>), String> {
    let r = dt_vm::Vm::run_to_completion(
        obj,
        "fuzz_main",
        &[],
        input,
        dt_vm::VmConfig {
            max_steps: 20_000_000,
            ..Default::default()
        },
    )
    .map_err(|e| format!("{e:?}"))?;
    Ok((r.ret, r.output))
}

fn main() {
    let max_seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);
    let shapes = [
        SynthConfig {
            functions: 6,
            vars_per_function: 14,
            stmts_per_function: 24,
            max_expr_depth: 6,
        },
        SynthConfig {
            functions: 2,
            vars_per_function: 4,
            stmts_per_function: 40,
            max_expr_depth: 2,
        },
        SynthConfig {
            functions: 8,
            vars_per_function: 10,
            stmts_per_function: 8,
            max_expr_depth: 8,
        },
    ];
    let bytes: &[u8] = &[0, 3, 55, 90, 177, 255];
    let mut failures = 0usize;
    for (si, shape) in shapes.iter().enumerate() {
        for seed in 0..max_seed {
            let src = dt_testsuite::synth::generate(seed, shape);
            let o0 =
                match compile_source(&src, &CompileOptions::new(Personality::Gcc, OptLevel::O0)) {
                    Ok(o) => o,
                    Err(e) => {
                        failures += 1;
                        println!("shape {si} seed {seed}: O0 COMPILE FAILED: {e:?}");
                        continue;
                    }
                };
            for (personality, level) in [
                (Personality::Gcc, OptLevel::Og),
                (Personality::Gcc, OptLevel::O2),
                (Personality::Gcc, OptLevel::O3),
                (Personality::Clang, OptLevel::O2),
                (Personality::Clang, OptLevel::O3),
            ] {
                let obj = match compile_source(&src, &CompileOptions::new(personality, level)) {
                    Ok(o) => o,
                    Err(e) => {
                        failures += 1;
                        println!("shape {si} seed {seed} {personality:?} {level:?}: COMPILE FAILED: {e:?}");
                        continue;
                    }
                };
                for &b in bytes {
                    let input = [b, b ^ 0x5a];
                    let expected = run(&o0, &input);
                    let got = run(&obj, &input);
                    if got != expected {
                        failures += 1;
                        println!(
                            "shape {si} seed {seed} {personality:?} {level:?} byte {b}: got {got:?} expected {expected:?}"
                        );
                        break;
                    }
                }
            }
        }
        eprintln!("shape {si} swept, {failures} failures so far");
    }
    println!("stress sweep complete: {failures} disagreements");
    if failures > 0 {
        std::process::exit(1);
    }
}
