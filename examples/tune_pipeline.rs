//! Pipeline tuning: rank the gcc passes by debug-information harm on a
//! few real-world suite programs, then derive and evaluate an `O2-d3`
//! configuration — the end-to-end DebugTuner workflow of the paper.
//!
//! ```sh
//! cargo run --release --example tune_pipeline
//! ```

use debugtuner::{dy_config, DebugTuner, ProgramInput};
use dt_passes::{OptLevel, PassGate, Personality};
use dt_testsuite::spec::Workload;

fn main() {
    // A three-program mini-suite (full runs use all 13; see the
    // `experiments` crate).
    let programs: Vec<ProgramInput> = ["zlib", "libpng", "wasm3"]
        .iter()
        .map(|name| {
            let p = dt_testsuite::program(name).expect("suite program");
            println!("fuzzing inputs for {name}...");
            ProgramInput::from_suite(&p, 800)
        })
        .collect();

    let tuner = DebugTuner::default();
    let personality = Personality::Gcc;
    let level = OptLevel::O2;

    // Rank passes by their debug-information impact.
    println!(
        "\nranking {personality} {level} passes over {} programs...",
        programs.len()
    );
    let ranking = tuner.rank_passes(&programs, personality, level);
    println!("top 10 debug-harmful passes:");
    for (i, e) in ranking.entries.iter().take(10).enumerate() {
        println!(
            "  {:>2}. {:<24} geomean improvement when disabled: {:+.2}%  ({}+ {}= {}-)",
            i + 1,
            e.pass,
            e.geomean_increment * 100.0,
            e.positive_programs,
            e.neutral_programs,
            e.negative_programs,
        );
    }

    // Build O2-d3 and compare debuggability + performance.
    let cfg = dy_config(personality, level, &ranking, 3);
    println!("\n{} disables: {:?}", cfg.name, cfg.disabled);

    let reference: Vec<f64> = programs
        .iter()
        .map(|p| tuner.evaluate(p, personality, level).reference.product)
        .collect();
    let tuned: Vec<f64> = programs
        .iter()
        .map(|p| {
            tuner
                .evaluate_config(p, personality, level, &cfg.gate)
                .product
        })
        .collect();
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "debug quality (product): O2 {:.4} -> {} {:.4} ({:+.1}%)",
        avg(&reference),
        cfg.name,
        avg(&tuned),
        100.0 * (avg(&tuned) - avg(&reference)) / avg(&reference)
    );

    let perf_ref =
        debugtuner::measure_speedup(personality, level, &PassGate::allow_all(), Workload::Test);
    let perf_tuned = debugtuner::measure_speedup(personality, level, &cfg.gate, Workload::Test);
    println!(
        "speedup over O0: O2 {:.3}x -> {} {:.3}x ({:+.1}%)",
        perf_ref.speedup,
        cfg.name,
        perf_tuned.speedup,
        100.0 * (perf_tuned.speedup - perf_ref.speedup) / perf_ref.speedup
    );

    let stats = tuner.stats();
    println!("\n{}", stats.summary());
    println!("{}", stats.to_json());
}
