//! Quickstart: compile a MiniC program at two optimization levels,
//! debug both builds, and measure how much debug information the
//! optimizer destroyed.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dt_minic::analysis::SourceAnalysis;
use dt_passes::{compile_source, CompileOptions, OptLevel, Personality};

const PROGRAM: &str = "\
int checksum(int seed, int byte) {
    int mixed = seed * 31 + byte;
    return mixed & 65535;
}
int fuzz_main() {
    int state = 7;
    int count = 0;
    for (int i = 0; i < in_len(); i++) {
        int b = in(i);
        state = checksum(state, b);
        if (b == 0) {
            count = count + 1;
        }
    }
    out(state);
    out(count);
    return state;
}";

fn main() {
    let inputs: Vec<Vec<u8>> = vec![b"hello\0world\0".to_vec(), b"abc".to_vec()];

    // 1. Build the unoptimized baseline and an -O2 binary.
    let o0 = compile_source(
        PROGRAM,
        &CompileOptions::new(Personality::Gcc, OptLevel::O0),
    )
    .expect("O0 build");
    let o2 = compile_source(
        PROGRAM,
        &CompileOptions::new(Personality::Gcc, OptLevel::O2),
    )
    .expect("O2 build");
    println!(
        "built O0 ({} bytes of .text) and O2 ({} bytes)",
        o0.text.len(),
        o2.text.len()
    );

    // 2. Run both under the debugger: temporary breakpoints on every
    //    line, recording the variables visible at each stop.
    let session = dt_debugger::SessionConfig::default();
    let base = dt_debugger::trace(&o0, "fuzz_main", &inputs, &session).unwrap();
    let opt = dt_debugger::trace(&o2, "fuzz_main", &inputs, &session).unwrap();
    println!(
        "stepped {} lines at O0, {} at O2",
        base.stepped_lines().len(),
        opt.stepped_lines().len()
    );

    // 3. Compute the paper's hybrid quality metrics.
    let parsed = dt_minic::parse(PROGRAM).unwrap();
    let analysis = SourceAnalysis::of(&parsed);
    let metrics = dt_metrics::hybrid(&opt, &base, &analysis);
    println!(
        "O2 debug quality: availability {:.3}, line coverage {:.3}, product {:.3}",
        metrics.availability, metrics.line_coverage, metrics.product
    );

    // 4. Show which variables the debugger lost on a specific line.
    for line in base.stepped_lines() {
        let base_vars = base.vars_at(line).cloned().unwrap_or_default();
        let opt_vars = opt.vars_at(line).cloned().unwrap_or_default();
        let lost: Vec<&String> = base_vars.difference(&opt_vars).collect();
        if !lost.is_empty() {
            println!("  line {line}: lost {lost:?}");
        }
    }
}
