//! Shared helpers for workspace-level examples and integration tests.
pub use debugtuner as core;
